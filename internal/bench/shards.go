package bench

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/codec"
	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
)

// This file measures sharded replication groups (DESIGN.md §6.6):
// partitioning the job space across N independent rsm groups so
// aggregate submit throughput scales with the shard count. Within one
// group every qsub is a global barrier (it enters the scheduler), so
// submissions serialize through the batch service's per-command
// processing cost no matter how many clients submit; shards multiply
// the number of such pipelines. The workload is hold submissions from
// several concurrent clients — each client's submissions round-robin
// across shards, so all shards stay fed — on an instant network with
// a nonzero SubmitDelay, isolating the per-group serialization that
// sharding attacks rather than simulated wire time.

// ShardVariant is one measured shard count.
type ShardVariant struct {
	// Shards is the number of independent replication groups.
	Shards int `json:"shards"`
	// Heads is the group size of each shard.
	Heads int `json:"heads_per_shard"`
	// Elapsed is the wall time to complete the whole timed workload.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Throughput is acknowledged submissions per second, aggregated
	// across shards.
	Throughput float64 `json:"throughput_jobs_per_sec"`
	// SubmitP50 and SubmitP99 are client-observed per-submission
	// latency percentiles.
	SubmitP50 time.Duration `json:"submit_p50_ns"`
	SubmitP99 time.Duration `json:"submit_p99_ns"`
	// Listed is the job count a post-run scatter-gather jstat
	// returned; it must equal the acknowledged submissions (the
	// merge drops nothing).
	Listed int `json:"listed_jobs"`
	// Speedup is this variant's throughput over the 1-shard baseline.
	Speedup float64 `json:"speedup_vs_one_shard"`
}

// ShardResult is the full shard-scaling sweep.
type ShardResult struct {
	Ops         int            `json:"ops"`
	Clients     int            `json:"clients"`
	SubmitDelay time.Duration  `json:"submit_delay_ns"`
	Variants    []ShardVariant `json:"variants"`
	// SpeedupAt4 is the 4-shard aggregate throughput over the 1-shard
	// baseline — the acceptance metric (≥3x).
	SpeedupAt4 float64 `json:"speedup_at_4_shards"`
}

// shardCounts is the measured sweep.
var shardCounts = []int{1, 2, 4, 8}

// MeasureShardScaling runs the sweep: ops hold-submissions from the
// given number of concurrent clients against 1/2/4/8-shard clusters
// (two heads per shard), measuring aggregate acknowledged-submission
// throughput and verifying the scatter-gather listing covers every
// acknowledged job.
func MeasureShardScaling(ops, clients int, submitDelay time.Duration) (ShardResult, error) {
	if clients <= 0 {
		clients = 8
	}
	if ops < clients {
		ops = clients
	}
	if submitDelay <= 0 {
		submitDelay = time.Millisecond
	}
	res := ShardResult{Ops: ops, Clients: clients, SubmitDelay: submitDelay}
	for _, s := range shardCounts {
		v, err := measureShardVariant(s, ops, clients, submitDelay)
		if err != nil {
			return res, fmt.Errorf("bench: shards=%d: %w", s, err)
		}
		res.Variants = append(res.Variants, v)
	}
	base := res.Variants[0].Throughput
	for i := range res.Variants {
		if base > 0 {
			res.Variants[i].Speedup = res.Variants[i].Throughput / base
		}
		if res.Variants[i].Shards == 4 {
			res.SpeedupAt4 = res.Variants[i].Speedup
		}
	}
	return res, nil
}

// measureShardVariant boots one sharded cluster and drives the timed
// workload through it.
func measureShardVariant(shards, ops, clients int, submitDelay time.Duration) (ShardVariant, error) {
	const headsPerShard = 2
	v := ShardVariant{Shards: shards, Heads: headsPerShard}

	c, err := cluster.New(cluster.Options{
		Heads:       headsPerShard,
		Shards:      shards,
		Computes:    8, // >= the largest sweep point: every shard owns a node
		Exclusive:   true,
		SubmitDelay: submitDelay,
		TuneGCS: func(g *gcs.Config) {
			g.Heartbeat = 25 * time.Millisecond
			g.FailTimeout = 500 * time.Millisecond
		},
	})
	if err != nil {
		return v, err
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		return v, err
	}

	clis := make([]*joshua.Client, clients)
	for i := range clis {
		if clis[i], err = c.Client(); err != nil {
			return v, err
		}
	}

	perClient := ops / clients
	run := func(warmup bool) ([]time.Duration, error) {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		lats := make([][]time.Duration, clients)
		n := perClient
		if warmup {
			n = 2
		}
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < n; k++ {
					start := time.Now()
					if err := holdSubmit(clis[i]); err != nil {
						errs[i] = err
						return
					}
					lats[i] = append(lats[i], time.Since(start))
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		return all, nil
	}

	if _, err := run(true); err != nil {
		return v, err
	}
	start := time.Now()
	lats, err := run(false)
	if err != nil {
		return v, err
	}
	v.Elapsed = time.Since(start)
	if v.Elapsed > 0 {
		v.Throughput = float64(clients*perClient) / v.Elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	v.SubmitP50 = percentileDur(lats, 0.50)
	v.SubmitP99 = percentileDur(lats, 0.99)

	// Every acknowledged submission must appear in the merged
	// whole-cluster listing — the scatter-gather invariant.
	jobs, err := clis[0].StatAll()
	if err != nil {
		return v, err
	}
	v.Listed = len(jobs)
	acked := clients*2 + clients*perClient // warmup + timed
	if v.Listed != acked {
		return v, fmt.Errorf("scatter-gather listing has %d jobs, %d were acknowledged", v.Listed, acked)
	}
	if err := verifyShardReplicas(c); err != nil {
		return v, err
	}
	return v, nil
}

// verifyShardReplicas checks that within every shard the replicas'
// job tables are byte-identical (the wire encoding of each head's
// full listing compares equal) — sharding must not weaken per-group
// determinism.
func verifyShardReplicas(c *cluster.Cluster) error {
	for s := 0; s < c.Shards(); s++ {
		var ref []byte
		refHead := -1
		for _, i := range c.LiveHeadsOf(s) {
			enc := encodeJobTable(c.HeadOf(s, i).Daemon().StatusAll())
			if ref == nil {
				ref, refHead = enc, i
				continue
			}
			if !bytes.Equal(enc, ref) {
				return fmt.Errorf("shard %d: head %d's job table is not byte-identical to head %d's", s, i, refHead)
			}
		}
	}
	return nil
}

// encodeJobTable renders a job listing in the wire encoding, the
// byte-identity witness for replica agreement. Lifecycle timestamps
// are zeroed first: each head stamps them from its own wall clock
// (pbs.Config.Clock), so they are local metadata, not replicated
// state.
func encodeJobTable(jobs []pbs.Job) []byte {
	e := codec.NewEncoder(256)
	for _, j := range jobs {
		j.SubmittedAt, j.StartedAt, j.CompletedAt = time.Time{}, time.Time{}, time.Time{}
		pbs.EncodeJob(e, j)
	}
	return e.Bytes()
}
