// Package bench is the measurement harness that regenerates the
// paper's evaluation: Figure 10 (job submission latency, single vs.
// multiple head nodes), Figure 11 (job submission throughput), and
// Figure 12 (availability/downtime), plus the ablations DESIGN.md
// calls out (safe vs. agreed delivery, output policies, batched
// submission, ordered vs. local reads).
//
// Calibration: absolute numbers are not the target — the paper's
// testbed was dual 450 MHz Pentium IIIs on a Fast Ethernet hub running
// Transis — but the latency model is chosen so the *shape* of the
// results holds: a single-head JOSHUA overhead in the tens of percent
// (local IPC), a large step from one to two heads (off-node total
// ordering), and modest per-head increments after that (per-member
// acknowledgment cost on a shared medium).
package bench

import (
	"fmt"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/gcs"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/simnet"
)

// Calibration is the latency model for one experiment run.
type Calibration struct {
	// Scale multiplies every model constant; 1.0 targets paper-like
	// absolute magnitudes, benchmarks use 0.1 or less.
	Scale float64
	// Latency is the simulated network's hop model.
	Latency simnet.Latency
	// TxTime serializes each host's remote sends (shared-medium Fast
	// Ethernet hub).
	TxTime time.Duration
	// SubmitDelay is the batch service's qsub processing cost.
	SubmitDelay time.Duration
	// Heartbeat paces the group's failure detector; it must be slow
	// relative to TxTime so detector background traffic does not
	// saturate the simulated medium.
	Heartbeat time.Duration
	// Agreed downgrades delivery from safe (all-ack, the calibrated
	// default) to agreed (sequencer order only) — the delivery-
	// guarantee ablation.
	Agreed bool
	// OutputPolicy selects which head relays command output (the
	// output-mutual-exclusion ablation).
	OutputPolicy joshua.OutputPolicy
	// OrderedCompletions routes mom completion reports through the
	// total order (the deterministic-allocation extension).
	OrderedCompletions bool
	// NoBatching disables sequencer DATA coalescing and ack-delay
	// piggybacking (MaxBatch=1, immediate per-message acks) — the
	// Transis-faithful one-datagram-per-message ablation.
	NoBatching bool
}

// PaperCalibration returns the model used for the Figure 10/11
// reproductions. At scale 1.0 the constants are in paper-scale
// milliseconds:
//
//	remote one-way hop   25 ms   (LAN + protocol processing)
//	local IPC hop        44 ms   (jsub -> joshua -> Transis daemon chain)
//	transmit slot        14 ms   (shared-hub serialization per datagram)
//	qsub processing      48 ms   (TORQUE server work per submission)
//
// which yields a ~98 ms unreplicated baseline (2 remote hops +
// processing) and a ~134 ms single-head JOSHUA path (one extra local
// hop), matching the paper's first two rows by construction; the
// multi-head rows then follow from the protocol's message pattern
// rather than from fitted constants.
func PaperCalibration(scale float64) Calibration {
	if scale <= 0 {
		scale = 1.0
	}
	ms := func(v float64) time.Duration {
		return time.Duration(v * scale * float64(time.Millisecond))
	}
	return Calibration{
		Scale:       scale,
		Latency:     simnet.Latency{Local: ms(44), Remote: ms(25)},
		TxTime:      ms(14),
		SubmitDelay: ms(48),
		Heartbeat:   ms(400),
	}
}

// tune applies the calibration's group communication settings: safe
// delivery and loopback self-delivery (the Transis-faithful delivery
// path) and a detector pace that stays off the measured medium.
func (cal Calibration) tune(c *gcs.Config) {
	c.SafeDelivery = !cal.Agreed
	c.LoopbackSelfDelivery = true
	c.Heartbeat = cal.Heartbeat
	c.FailTimeout = 8 * cal.Heartbeat
	c.ResendInterval = 4 * cal.Heartbeat
	c.FlushTimeout = 10 * cal.Heartbeat
	if cal.NoBatching {
		c.MaxBatch = 1
		c.AckDelay = -1
	}
}

// options builds the cluster configuration for one measured system.
func (cal Calibration) options(heads int, plain bool) cluster.Options {
	return cluster.Options{
		Heads:        heads,
		Computes:     1,
		Exclusive:    true,
		Latency:      cal.Latency,
		TxTime:       cal.TxTime,
		SubmitDelay:  cal.SubmitDelay,
		Plain:        plain,
		OutputPolicy: cal.OutputPolicy,
		TuneGCS:      cal.tune,
	}
}

func (cal Calibration) newCluster(heads int, plain bool) (*cluster.Cluster, error) {
	return cluster.New(cal.options(heads, plain))
}

// System is one measured deployment plus a client submitting from a
// separate login node, pinned to the highest-numbered head (the
// paper's off-node submission path: the intercepting head is not the
// sequencer once the group has two or more members).
type System struct {
	Name    string
	Heads   int
	Cluster *cluster.Cluster
	Client  *joshua.Client
}

// StartSystem boots one configuration: plain=true is the unreplicated
// TORQUE baseline; otherwise a JOSHUA group of the given size.
func StartSystem(cal Calibration, heads int, plain bool) (*System, error) {
	c, err := cal.newCluster(heads, plain)
	if err != nil {
		return nil, err
	}
	if !plain {
		if err := c.WaitReady(30 * time.Second); err != nil {
			c.Close()
			return nil, err
		}
	}
	cli, err := c.ClientFor(heads - 1)
	if err != nil {
		c.Close()
		return nil, err
	}
	name := fmt.Sprintf("JOSHUA/TORQUE %d", heads)
	if plain {
		name = "TORQUE"
	}
	return &System{Name: name, Heads: heads, Cluster: c, Client: cli}, nil
}

// Close tears the system down.
func (s *System) Close() { s.Cluster.Close() }

// holdSubmit is the measured operation: a job submission that goes on
// hold, so no job launches perturb the interconnect during
// measurement (the paper likewise measures pure submission).
func holdSubmit(cli *joshua.Client) error {
	_, err := cli.Submit(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true})
	return err
}

// MeasureLatency returns the mean single-submission latency over the
// given number of samples, after a short warmup.
func MeasureLatency(cli *joshua.Client, samples int) (time.Duration, error) {
	for i := 0; i < 3; i++ {
		if err := holdSubmit(cli); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < samples; i++ {
		if err := holdSubmit(cli); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(samples), nil
}

// MeasureThroughput returns the wall time to enqueue n jobs
// back-to-back — the paper's Figure 11 workload (sequential jsub of
// 10/50/100 jobs).
func MeasureThroughput(cli *joshua.Client, n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := holdSubmit(cli); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// MeasureBatchThroughput enqueues n jobs as a single batched command.
func MeasureBatchThroughput(cli *joshua.Client, n int) (time.Duration, error) {
	start := time.Now()
	if _, err := cli.SubmitBatch(pbs.SubmitRequest{Name: "bench", Owner: "bench", Hold: true}, n); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
