package gcs

import (
	"sort"
	"time"
)

// flushState tracks one in-progress view change. A flush reconciles
// the unstable message sets of all surviving members so that every
// member entering the new view has delivered exactly the same messages
// in the old view (virtual synchrony), then installs the new view.
type flushState struct {
	attempt    uint64
	coord      MemberID
	candidates []MemberID // proposed next-view membership (sorted)
	oldMembers []MemberID // candidates that belong to the current view
	joining    []MemberID // candidates that do not
	states     map[MemberID]*message
	started    time.Time
	// lastPropose paces intra-attempt propose retransmission
	// (coordinator); lastStateSend paces flush-state retransmission
	// (participant). Both cover datagram loss inside one attempt.
	lastPropose   time.Time
	lastStateSend time.Time
	strikes       int // participant: timeouts waiting for NEWVIEW
}

// coordinatorOf returns the member that should coordinate a view
// change of the current view: the lowest member that is not suspected
// and not leaving.
func (p *Process) coordinatorOf() MemberID {
	for _, m := range p.view.Members {
		if !p.suspected[m] && !p.leavers[m] {
			return m
		}
	}
	return "" // everyone else suspected; caller treats self as coordinator
}

// membershipChangeNeeded reports whether the current view no longer
// matches reality.
func (p *Process) membershipChangeNeeded() bool {
	for _, m := range p.view.Members {
		if p.suspected[m] || p.leavers[m] {
			return true
		}
	}
	for j := range p.joiners {
		if !p.view.Includes(j) && !p.suspected[j] {
			return true
		}
	}
	return false
}

// maybeStartFlush begins a view change if one is needed and this
// member is the coordinator. Called from the tick handler and after
// membership-relevant messages.
func (p *Process) maybeStartFlush() {
	if p.st != statusNormal || !p.membershipChangeNeeded() {
		return
	}
	coord := p.coordinatorOf()
	if coord != p.cfg.Self && coord != "" {
		return // someone else will coordinate; our flushState goes out on their propose
	}
	p.beginFlush(1)
}

// nextCandidates computes the proposed membership for the next view.
func (p *Process) nextCandidates() (candidates, old, joining []MemberID) {
	for _, m := range p.view.Members {
		if m == p.cfg.Self || (!p.suspected[m] && !p.leavers[m]) {
			candidates = append(candidates, m)
			old = append(old, m)
		}
	}
	for j := range p.joiners {
		if !p.suspected[j] && !(View{Members: candidates}).Includes(j) {
			candidates = append(candidates, j)
			joining = append(joining, j)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
	sort.Slice(joining, func(i, j int) bool { return joining[i] < joining[j] })
	return candidates, old, joining
}

// beginFlush starts (or restarts) a view change with this member as
// coordinator.
func (p *Process) beginFlush(attempt uint64) {
	// A membership change is underway: stop serving leased reads and
	// record when grants provably ceased (we stop granting the moment
	// st leaves statusNormal below; holders' leases all expire within
	// one LeaseDuration of that).
	p.revokeLease()
	if p.st == statusNormal && p.cfg.LeaseDuration > 0 {
		p.leaseFence = time.Now().Add(p.cfg.LeaseDuration)
	}
	// Push out any batch still accumulating in this round before the
	// flush snapshots p.ordered, so a batch straddling the view change
	// is reconciled (and cut) exactly like singleton DATA.
	p.flushOutData()
	p.flushReqOut()
	p.bumpStat(func(st *Stats) { st.FlushAttempts++ })
	candidates, old, joining := p.nextCandidates()
	p.st = statusFlushing
	p.fl = flushState{
		attempt:    attempt,
		coord:      p.cfg.Self,
		candidates: candidates,
		oldMembers: old,
		joining:    joining,
		states:     make(map[MemberID]*message),
		started:    time.Now(),
	}
	p.logf("flush attempt %d: candidates=%v joining=%v", attempt, candidates, joining)

	// Record our own contribution and solicit everyone else's.
	p.fl.states[p.cfg.Self] = p.makeFlushStateMsg(attempt)
	p.fl.lastPropose = time.Now()
	prop := &message{
		Kind:    kindPropose,
		From:    p.cfg.Self,
		ViewID:  p.view.ID,
		Attempt: attempt,
		Members: candidates,
	}
	p.multicast(old, prop)
	p.checkFlushComplete()
}

// makeFlushStateMsg snapshots this member's unstable messages and
// delivery progress for the coordinator.
func (p *Process) makeFlushStateMsg(attempt uint64) *message {
	msgs := make([]dataMsg, 0, len(p.ordered))
	for _, d := range p.ordered {
		msgs = append(msgs, *d)
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
	table := make(map[MemberID]uint64, len(p.delivered))
	for m, s := range p.delivered {
		table[m] = s
	}
	return &message{
		Kind:        kindFlushState,
		From:        p.cfg.Self,
		ViewID:      p.view.ID,
		Attempt:     attempt,
		NextDeliver: p.nextDeliver,
		StableSeen:  p.stable,
		DelivTable:  table,
		Msgs:        msgs,
	}
}

// onPropose handles a view-change proposal from a coordinator.
func (p *Process) onPropose(m *message) {
	if m.ViewID != p.view.ID || p.st == statusJoining || p.st == statusClosed {
		// A proposal for a view we already left means the sender
		// missed the NEWVIEW (e.g. the old coordinator died right
		// after disseminating it). Retransmit our cached copy.
		if p.st != statusClosed && p.lastNewView != nil &&
			m.ViewID == p.lastNewView.ViewID && memberIn(p.lastNewView.Members, m.From) {
			p.sendTo(m.From, p.lastNewView)
		}
		return
	}
	if p.suspected[m.From] {
		return // we believe this coordinator is dead
	}
	switch p.st {
	case statusNormal:
		// Enter the flush as a participant. Our lease dies here,
		// synchronously with the membership change: the flush state we
		// send below is the revocation acknowledgment.
		p.revokeLease()
		if p.cfg.LeaseDuration > 0 {
			p.leaseFence = time.Now().Add(p.cfg.LeaseDuration)
		}
		p.st = statusFlushing
		p.fl = flushState{
			attempt: m.Attempt,
			coord:   m.From,
			started: time.Now(),
		}
	case statusFlushing:
		// Competing or newer proposal. Follow a higher attempt, or a
		// lower-ID coordinator at the same attempt (deterministic
		// tie-break). If we were coordinating ourselves, this demotes
		// us; our own flush is simply abandoned.
		if m.Attempt < p.fl.attempt {
			return
		}
		if m.Attempt == p.fl.attempt && m.From > p.fl.coord {
			return
		}
		p.fl = flushState{
			attempt: m.Attempt,
			coord:   m.From,
			started: time.Now(),
		}
	}
	p.sendTo(m.From, p.makeFlushStateMsg(m.Attempt))
}

// onFlushState collects a participant's contribution (coordinator
// only).
func (p *Process) onFlushState(m *message) {
	if p.lastNewView != nil && m.ViewID == p.lastNewView.ViewID &&
		memberIn(p.lastNewView.Members, m.From) && m.ViewID < p.view.ID {
		// A member still flushing a view we already left: its NEWVIEW
		// was lost. Retransmit our cached copy (any member that
		// installed the view holds one).
		p.sendTo(m.From, p.lastNewView)
		return
	}
	if p.st != statusFlushing || p.fl.coord != p.cfg.Self {
		return
	}
	if m.ViewID != p.view.ID || m.Attempt != p.fl.attempt {
		return
	}
	if !memberIn(p.fl.oldMembers, m.From) {
		return
	}
	delete(p.flushMiss, m.From)
	p.fl.states[m.From] = m
	p.checkFlushComplete()
}

// checkFlushComplete finishes the flush once every old-view candidate
// has reported and any stale-lease barrier has passed.
func (p *Process) checkFlushComplete() {
	if p.st != statusFlushing || p.fl.coord != p.cfg.Self {
		return
	}
	for _, m := range p.fl.oldMembers {
		if _, ok := p.fl.states[m]; !ok {
			return
		}
	}
	if p.leaseBarrierWait() > 0 {
		return // flushTick re-checks until the barrier passes
	}
	p.completeFlush()
}

// leaseBarrierWait returns how long the coordinator must still delay
// installing a new view that excludes current members, so that any
// read lease those members hold has expired before the new view can
// ack its first mutation. Excluded members revoke nothing themselves
// (they never see the flush), so the coordinator waits out the lease
// fence — one LeaseDuration after grants ceased. Under the FailStop
// policy (the paper's model) exclusion means a crash and a crashed
// member serves no reads, so no barrier applies; it matters under
// Majority, where an excluded member may be alive across a partition.
// The fence anchors at this member's flush entry; a live partitioned
// sequencer stops granting at its own failure-detection timeout, so
// detection skew beyond the lease safety margin is the residual
// window (see DESIGN).
func (p *Process) leaseBarrierWait() time.Duration {
	if p.cfg.LeaseDuration <= 0 || !p.cfg.SafeDelivery || p.cfg.PartitionPolicy != Majority {
		return 0
	}
	excluded := false
	for _, m := range p.view.Members {
		if !memberIn(p.fl.candidates, m) {
			excluded = true
			break
		}
	}
	if !excluded {
		return 0
	}
	return time.Until(p.leaseFence)
}

// completeFlush is the coordinator's commit step: compute the final
// message set of the old view, deliver it locally, gather the state
// snapshot for joiners, and install + disseminate the new view.
func (p *Process) completeFlush() {
	// Union of all unstable messages reported by survivors.
	union := make(map[uint64]*dataMsg)
	maxStable := p.stable
	for _, st := range p.fl.states {
		if st.StableSeen > maxStable {
			maxStable = st.StableSeen
		}
		for i := range st.Msgs {
			d := st.Msgs[i]
			if _, ok := union[d.Seq]; !ok {
				union[d.Seq] = &d
			}
		}
	}
	// The final sequence is the longest contiguous extension above the
	// highest stability watermark. Messages beyond a gap were known
	// only to dead members and are cut; their senders (if alive)
	// retransmit them in the new view.
	finalSeq := maxStable
	for union[finalSeq+1] != nil {
		finalSeq++
	}
	var cut int
	msgs := make([]dataMsg, 0, len(union))
	for seq, d := range union {
		if seq <= finalSeq {
			msgs = append(msgs, *d)
		} else {
			cut++
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
	if cut > 0 {
		p.logf("flush cut %d messages sequenced beyond %d", cut, finalSeq)
	}

	// Deliver the final prefix locally so the snapshot reflects it.
	for i := range msgs {
		d := msgs[i]
		p.acceptData(&d)
	}
	p.deliverTo(finalSeq)

	newViewID := p.view.ID + p.fl.attempt
	primary := p.newViewPrimary()
	candidates := p.fl.candidates
	joining := p.fl.joining
	attempt := p.fl.attempt
	oldViewID := p.view.ID

	// State transfer for joiners, gathered before anything is
	// disseminated so a snapshot failure can simply drop the joiners
	// from the proposal.
	if len(joining) > 0 {
		// The application may serve the transfer as a delta of
		// everything after the joiners' recovered state; with several
		// joiners the minimum advertised version covers them all (each
		// skips what it already has).
		since := p.joinSince[joining[0]]
		for _, j := range joining[1:] {
			if p.joinSince[j] < since {
				since = p.joinSince[j]
			}
		}
		snapshot, ok := p.collectSnapshot(since)
		if !ok {
			p.logf("snapshot request timed out; admitting no joiners this view")
			kept := candidates[:0:0]
			for _, c := range candidates {
				if !memberIn(joining, c) {
					kept = append(kept, c)
				}
			}
			candidates, joining = kept, nil
		} else {
			table := make(map[MemberID]uint64, len(p.delivered))
			for m, s := range p.delivered {
				table[m] = s
			}
			// Chunk the snapshot so no single frame carries an
			// unbounded application state.
			chunkCnt := (len(snapshot) + p.cfg.TransferChunk - 1) / p.cfg.TransferChunk
			if chunkCnt == 0 {
				chunkCnt = 1
			}
			for i := 0; i < chunkCnt; i++ {
				lo := i * p.cfg.TransferChunk
				hi := lo + p.cfg.TransferChunk
				if hi > len(snapshot) {
					hi = len(snapshot)
				}
				snap := &message{
					Kind:       kindStateSnap,
					From:       p.cfg.Self,
					ViewID:     oldViewID,
					Attempt:    attempt,
					NewViewID:  newViewID,
					DelivTable: table,
					ChunkIdx:   uint64(i),
					ChunkCnt:   uint64(chunkCnt),
					AppState:   snapshot[lo:hi],
				}
				p.multicast(joining, snap)
			}
		}
	}

	nv := &message{
		Kind:      kindNewView,
		From:      p.cfg.Self,
		ViewID:    oldViewID,
		Attempt:   attempt,
		NewViewID: newViewID,
		Members:   candidates,
		Primary:   primary,
		FinalSeq:  finalSeq,
		Msgs:      msgs,
	}
	p.multicast(candidates, nv)
	// Keep the NEWVIEW for retransmission: a member whose copy was
	// lost keeps resending its flush state, which we answer with this.
	p.lastNewView = nv
	p.adoptView(View{ID: newViewID, Members: candidates, Primary: primary})
}

// newViewPrimary applies the configured partition policy.
func (p *Process) newViewPrimary() bool {
	if !p.view.Primary {
		return false
	}
	switch p.cfg.PartitionPolicy {
	case Majority:
		// Strict majority of the previous primary view must carry
		// over. Joiners do not count toward the quorum.
		return 2*len(p.fl.oldMembers) > len(p.view.Members)
	default: // FailStop
		return true
	}
}

// collectSnapshot asks the application for a state snapshot via the
// event stream and waits for the reply. Blocking the protocol loop is
// deliberate: the snapshot must be positioned exactly here in the
// event order, and the group is quiescent during a flush anyway.
func (p *Process) collectSnapshot(since uint64) ([]byte, bool) {
	reply := make(chan []byte, 1)
	var once bool
	p.events.push(SnapshotRequestEvent{Since: since, Reply: func(state []byte) {
		if !once {
			once = true
			reply <- state
		}
	}})
	select {
	case s := <-reply:
		return s, true
	case <-time.After(p.cfg.SnapshotTimeout):
		return nil, false
	case <-p.done:
		return nil, false
	}
}

// onNewView installs the view computed by the coordinator.
func (p *Process) onNewView(m *message) {
	switch p.st {
	case statusJoining:
		p.joinerInstall(m)
		return
	case statusClosed:
		return
	}
	if m.ViewID != p.view.ID || m.NewViewID <= p.view.ID {
		return
	}
	if !memberIn(m.Members, p.cfg.Self) {
		return // we were excluded; see the package comment on rejoin
	}
	// Deliver the agreed final prefix of the old view.
	for i := range m.Msgs {
		d := m.Msgs[i]
		p.acceptData(&d)
	}
	p.deliverTo(m.FinalSeq)
	p.lastNewView = m // cache for retransmission to stragglers
	if p.nextDeliver-1 != m.FinalSeq {
		// Should be impossible: the coordinator's union contains every
		// message up to FinalSeq. Log loudly and continue; the
		// alternative is a stalled member.
		p.logf("ERROR: flush shortfall, delivered to %d want %d", p.nextDeliver-1, m.FinalSeq)
	}
	p.adoptView(View{ID: m.NewViewID, Members: m.Members, Primary: m.Primary})
}

// deliverTo delivers buffered messages strictly up to seq. The
// membership agreement of the flush supersedes the safe-delivery
// acknowledgment condition: everything up to the agreed final
// sequence is known to every survivor.
func (p *Process) deliverTo(seq uint64) {
	for p.nextDeliver <= seq {
		d, ok := p.ordered[p.nextDeliver]
		if !ok {
			return
		}
		p.deliverOne(d)
		p.nextDeliver++
	}
}

// adoptView resets protocol state for the new view, emits the
// ViewEvent, and retransmits our still-undelivered messages.
func (p *Process) adoptView(v View) {
	p.installView(v)
	p.st = statusNormal
	p.fl = flushState{}
	p.suspected = make(map[MemberID]bool)
	p.leavers = make(map[MemberID]bool)
	p.flushMiss = make(map[MemberID]int)
	for j := range p.joiners {
		if v.Includes(j) {
			delete(p.joiners, j)
			delete(p.joinSince, j)
		}
	}
	p.events.push(ViewEvent{View: p.View()})
	p.logf("installed %s", v)

	// Retransmit our still-undelivered messages. When we are the new
	// sequencer, transmitting self-sequences and delivers synchronously,
	// which pops entries off p.pending — so walk by sender sequence
	// number, not by index.
	seqs := make([]uint64, len(p.pending))
	for i, pm := range p.pending {
		seqs[i] = pm.senderSeq
	}
	for _, s := range seqs {
		for i := range p.pending {
			if p.pending[i].senderSeq == s {
				p.transmitPending(&p.pending[i])
				break
			}
		}
	}
}

// joinerInstall handles the NEWVIEW that admits this process.
func (p *Process) joinerInstall(m *message) {
	if !memberIn(m.Members, p.cfg.Self) {
		return
	}
	if !p.snapGot || p.snapViewID != m.NewViewID {
		// The snapshot was lost or belongs to another attempt. Keep
		// soliciting; the group will run another flush for us. (FIFO
		// transports deliver the snapshot before the NEWVIEW, so this
		// is a loss-only path.)
		p.logf("NEWVIEW %d without matching snapshot; rejoining", m.NewViewID)
		return
	}
	p.delivered = p.snapTable
	if p.delivered == nil {
		p.delivered = make(map[MemberID]uint64)
	}
	// Continue our sender numbering where a previous incarnation of
	// this member ID left off, so the group's duplicate suppression
	// does not swallow our new messages; shift anything we queued
	// while joining.
	if base := p.delivered[p.cfg.Self]; base > 0 {
		for i := range p.pending {
			p.pending[i].senderSeq += base
		}
		p.senderSeq += base
	}
	p.events.push(StateTransferEvent{State: p.snapApp})
	p.snapGot = false
	p.snapTable = nil
	p.snapApp = nil
	p.snapChunks = nil
	p.snapHave = 0
	p.adoptView(View{ID: m.NewViewID, Members: m.Members, Primary: m.Primary})
}

// onStateSnap collects one chunk of the pre-admission state transfer
// (joiner only). snapGot flips once all chunks of one NewViewID are
// in; a chunk from a different (newer) attempt restarts assembly.
func (p *Process) onStateSnap(m *message) {
	if p.st != statusJoining {
		return
	}
	const maxChunks = 1 << 16 // sanity bound against a corrupt frame
	if m.ChunkCnt == 0 || m.ChunkCnt > maxChunks || m.ChunkIdx >= m.ChunkCnt {
		return
	}
	if p.snapChunks == nil || p.snapViewID != m.NewViewID || len(p.snapChunks) != int(m.ChunkCnt) {
		p.snapGot = false
		p.snapViewID = m.NewViewID
		p.snapChunks = make([][]byte, m.ChunkCnt)
		p.snapHave = 0
	}
	if p.snapChunks[m.ChunkIdx] == nil {
		chunk := m.AppState
		if chunk == nil {
			chunk = []byte{}
		}
		p.snapChunks[m.ChunkIdx] = chunk
		p.snapHave++
	}
	p.snapTable = m.DelivTable
	if p.snapHave < len(p.snapChunks) {
		return
	}
	total := 0
	for _, c := range p.snapChunks {
		total += len(c)
	}
	p.snapApp = make([]byte, 0, total)
	for _, c := range p.snapChunks {
		p.snapApp = append(p.snapApp, c...)
	}
	p.snapGot = true
}

// onJoin handles an admission request.
func (p *Process) onJoin(m *message) {
	if p.st == statusJoining || p.st == statusClosed {
		return
	}
	if p.view.Includes(m.From) {
		// A current member asking to join must have crashed and
		// restarted: treat the old incarnation as failed, then
		// readmit.
		if !p.suspected[m.From] {
			p.suspected[m.From] = true
			p.shareSuspicions()
		}
	}
	p.joiners[m.From] = true
	p.joinSince[m.From] = m.Since
	p.maybeStartFlush()
}

// onLeave handles a voluntary departure, which the paper models as a
// politely announced failure.
func (p *Process) onLeave(m *message) {
	if m.ViewID != p.view.ID || !p.view.Includes(m.From) {
		return
	}
	p.leavers[m.From] = true
	p.maybeStartFlush()
}

// onSuspect merges a peer's failure suspicions. Sharing suspicions
// makes coordinator election converge: everyone ends up agreeing on
// who is out.
func (p *Process) onSuspect(m *message) {
	if m.ViewID != p.view.ID {
		return
	}
	changed := false
	for _, s := range m.Suspects {
		if s == p.cfg.Self || p.suspected[s] || !p.view.Includes(s) {
			continue
		}
		p.suspected[s] = true
		changed = true
	}
	if !changed {
		return
	}
	switch p.st {
	case statusNormal:
		p.maybeStartFlush()
	case statusFlushing:
		p.flushReact()
	}
}

// shareSuspicions broadcasts our suspicion set to the view.
func (p *Process) shareSuspicions() {
	suspects := make([]MemberID, 0, len(p.suspected))
	for s := range p.suspected {
		suspects = append(suspects, s)
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
	m := &message{Kind: kindSuspect, From: p.cfg.Self, ViewID: p.view.ID, Suspects: suspects}
	p.sendToMembers(m)
	if p.st == statusFlushing {
		p.flushReact()
	} else {
		p.maybeStartFlush()
	}
}

// flushReact re-evaluates an in-progress flush after the suspicion set
// changed: a coordinator restarts if a candidate died; a participant
// takes over if the coordinator died.
func (p *Process) flushReact() {
	if p.st != statusFlushing {
		return
	}
	if p.fl.coord == p.cfg.Self {
		for _, c := range p.fl.candidates {
			if p.suspected[c] || p.leavers[c] {
				p.beginFlush(p.fl.attempt + 1)
				return
			}
		}
		return
	}
	if p.suspected[p.fl.coord] {
		// The coordinator died mid-flush. The lowest surviving member
		// takes over with a fresh attempt.
		if p.coordinatorOf() == p.cfg.Self {
			p.beginFlush(p.fl.attempt + 1)
		}
	}
}

// flushTick retransmits within an attempt and enforces the
// per-attempt timeout.
func (p *Process) flushTick(now time.Time) {
	if now.Sub(p.fl.started) < p.cfg.FlushTimeout {
		// Intra-attempt retransmission against datagram loss: the
		// coordinator re-solicits members that have not reported; a
		// participant re-sends its state (which also prompts a
		// NEWVIEW retransmission if the flush already completed).
		if p.fl.coord == p.cfg.Self {
			if now.Sub(p.fl.lastPropose) >= p.cfg.ResendInterval {
				p.fl.lastPropose = now
				prop := &message{
					Kind:    kindPropose,
					From:    p.cfg.Self,
					ViewID:  p.view.ID,
					Attempt: p.fl.attempt,
					Members: p.fl.candidates,
				}
				var lagging []MemberID
				for _, m := range p.fl.oldMembers {
					if _, ok := p.fl.states[m]; !ok && m != p.cfg.Self {
						lagging = append(lagging, m)
					}
				}
				p.multicast(lagging, prop)
			}
			// All states may already be in with only the stale-lease
			// barrier pending; idempotent, completes when it passes.
			p.checkFlushComplete()
		} else if now.Sub(p.fl.lastStateSend) >= p.cfg.ResendInterval {
			p.fl.lastStateSend = now
			p.sendTo(p.fl.coord, p.makeFlushStateMsg(p.fl.attempt))
		}
		return
	}
	if p.fl.coord == p.cfg.Self {
		// Participants that have not reported get a strike; two
		// consecutive missed attempts mean they are presumed dead and
		// excluded, one missed attempt just retries with the same
		// candidates (they may merely be slow).
		changed := false
		for _, m := range p.fl.oldMembers {
			if m == p.cfg.Self {
				continue
			}
			if _, ok := p.fl.states[m]; !ok {
				p.flushMiss[m]++
				if p.flushMiss[m] >= 2 && !p.suspected[m] {
					p.suspected[m] = true
					changed = true
				}
			} else {
				delete(p.flushMiss, m)
			}
		}
		if changed {
			p.shareSuspicions()
		}
		p.beginFlush(p.fl.attempt + 1)
		return
	}
	// Participant: the coordinator is slow or dead.
	p.fl.strikes++
	p.fl.started = now
	if p.fl.strikes >= 2 {
		if !p.suspected[p.fl.coord] {
			p.suspected[p.fl.coord] = true
			p.shareSuspicions()
		}
		if p.coordinatorOf() == p.cfg.Self {
			p.beginFlush(p.fl.attempt + 1)
		}
	}
}

func memberIn(ms []MemberID, m MemberID) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}
