package gcs

import (
	"reflect"
	"testing"
)

// White-box unit tests for the pure membership/flush decision logic.
// These construct a Process directly (no run loop) and exercise the
// functions the view-change protocol pivots on.

func bareProcess(self MemberID, members []MemberID, primary bool) *Process {
	p := &Process{
		cfg:       Config{Self: self, PartitionPolicy: FailStop},
		view:      View{ID: 3, Members: members, Primary: primary},
		suspected: make(map[MemberID]bool),
		joiners:   make(map[MemberID]bool),
		leavers:   make(map[MemberID]bool),
		delivered: make(map[MemberID]uint64),
	}
	return p
}

func TestCoordinatorOf(t *testing.T) {
	p := bareProcess("c", []MemberID{"a", "b", "c"}, true)
	if got := p.coordinatorOf(); got != "a" {
		t.Errorf("coordinator = %q, want a", got)
	}
	p.suspected["a"] = true
	if got := p.coordinatorOf(); got != "b" {
		t.Errorf("coordinator = %q, want b", got)
	}
	p.leavers["b"] = true
	if got := p.coordinatorOf(); got != "c" {
		t.Errorf("coordinator = %q, want c", got)
	}
	p.suspected["c"] = true // self-suspicion should not normally happen…
	if got := p.coordinatorOf(); got != "" {
		t.Errorf("coordinator = %q, want empty when all excluded", got)
	}
}

func TestMembershipChangeNeeded(t *testing.T) {
	p := bareProcess("a", []MemberID{"a", "b"}, true)
	if p.membershipChangeNeeded() {
		t.Error("no change should be needed initially")
	}
	p.suspected["b"] = true
	if !p.membershipChangeNeeded() {
		t.Error("suspicion should require a change")
	}
	delete(p.suspected, "b")
	p.leavers["b"] = true
	if !p.membershipChangeNeeded() {
		t.Error("leave should require a change")
	}
	delete(p.leavers, "b")
	p.joiners["c"] = true
	if !p.membershipChangeNeeded() {
		t.Error("joiner should require a change")
	}
	// A joiner that is already a member does not.
	delete(p.joiners, "c")
	p.joiners["b"] = true
	if p.membershipChangeNeeded() {
		t.Error("existing member as joiner should not require a change")
	}
	// A suspected joiner does not either.
	p.joiners["c"] = true
	p.suspected["c"] = true
	delete(p.joiners, "b")
	if p.membershipChangeNeeded() {
		t.Error("suspected joiner should not require a change")
	}
}

func TestNextCandidates(t *testing.T) {
	p := bareProcess("b", []MemberID{"a", "b", "c", "d"}, true)
	p.suspected["a"] = true
	p.leavers["d"] = true
	p.joiners["e"] = true
	p.joiners["c"] = true // already a member: not a joiner

	candidates, old, joining := p.nextCandidates()
	if !reflect.DeepEqual(candidates, []MemberID{"b", "c", "e"}) {
		t.Errorf("candidates = %v", candidates)
	}
	if !reflect.DeepEqual(old, []MemberID{"b", "c"}) {
		t.Errorf("old = %v", old)
	}
	if !reflect.DeepEqual(joining, []MemberID{"e"}) {
		t.Errorf("joining = %v", joining)
	}
}

func TestNextCandidatesSelfAlwaysIncluded(t *testing.T) {
	// Even if others mark us leaving/suspected, our own proposal keeps
	// us in (we are evidently alive).
	p := bareProcess("a", []MemberID{"a", "b"}, true)
	p.suspected["b"] = true
	candidates, old, _ := p.nextCandidates()
	if !reflect.DeepEqual(candidates, []MemberID{"a"}) || !reflect.DeepEqual(old, []MemberID{"a"}) {
		t.Errorf("candidates = %v, old = %v", candidates, old)
	}
}

func TestNewViewPrimaryFailStop(t *testing.T) {
	p := bareProcess("a", []MemberID{"a", "b", "c", "d"}, true)
	p.suspected["c"] = true
	p.suspected["d"] = true
	_, old, _ := p.nextCandidates()
	p.fl = flushState{oldMembers: old}
	// FailStop: even a minority fragment of a primary view stays
	// primary (2 of 4 here).
	if !p.newViewPrimary() {
		t.Error("FailStop fragment should stay primary")
	}
	// A non-primary view never becomes primary by shrinking.
	p.view.Primary = false
	if p.newViewPrimary() {
		t.Error("non-primary view cannot regain primary")
	}
}

func TestNewViewPrimaryMajority(t *testing.T) {
	p := bareProcess("a", []MemberID{"a", "b", "c", "d"}, true)
	p.cfg.PartitionPolicy = Majority
	p.suspected["d"] = true
	_, old, _ := p.nextCandidates()
	p.fl = flushState{oldMembers: old}
	// 3 of 4 is a strict majority.
	if !p.newViewPrimary() {
		t.Error("3/4 should be primary under Majority")
	}
	// 2 of 4 is not.
	p.suspected["c"] = true
	_, old, _ = p.nextCandidates()
	p.fl = flushState{oldMembers: old}
	if p.newViewPrimary() {
		t.Error("2/4 should not be primary under Majority")
	}
	// Joiners do not count toward the quorum.
	p.joiners["zz"] = true
	_, old, _ = p.nextCandidates()
	p.fl = flushState{oldMembers: old}
	if p.newViewPrimary() {
		t.Error("joiner must not tip the quorum")
	}
}

func TestMemberIn(t *testing.T) {
	ms := []MemberID{"a", "b"}
	if !memberIn(ms, "a") || memberIn(ms, "z") || memberIn(nil, "a") {
		t.Error("memberIn wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[MemberID]uint64{"c": 1, "a": 2, "b": 3}
	got := sortedKeys(m)
	if !reflect.DeepEqual(got, []MemberID{"a", "b", "c"}) {
		t.Errorf("sortedKeys = %v", got)
	}
}
