package gcs

import (
	"fmt"
	"time"

	"joshua/internal/codec"
)

// Wire message kinds. The protocol is datagram-based; every datagram
// carries exactly one message, tagged with a kind byte.
const (
	kindHeartbeat  byte = iota + 1
	kindData            // sequenced broadcast (also used for retransmissions)
	kindReq             // sender -> sequencer: please order this payload
	kindNack            // receiver -> sequencer: retransmit these sequence numbers
	kindAck             // receiver -> sequencer: cumulative delivery acknowledgment
	kindStable          // sequencer -> all: stability watermark for garbage collection
	kindJoin            // joiner -> all: request admission
	kindLeave           // member -> all: voluntary departure
	kindSuspect         // member -> all: shared failure suspicion
	kindPropose         // coordinator -> candidates: begin view change
	kindFlushState      // member -> coordinator: my unstable messages and progress
	kindNewView         // coordinator -> candidates: install the new view
	kindStateSnap       // coordinator -> joiner: state transfer before first view
	kindSafe            // sequencer -> all: cumulative safe-delivery watermark
	kindBatch           // sequencer -> all: several sequenced messages in one frame
	kindReqBatch        // sender -> sequencer: several ordering requests + piggybacked ack
)

// dataMsg is one sequenced application message. Seq is the global
// total-order position within the view; SenderSeq is the sender's own
// FIFO counter, used for duplicate suppression across view changes.
type dataMsg struct {
	Seq       uint64
	Sender    MemberID
	SenderSeq uint64
	Payload   []byte
}

// message is the union of all wire messages. Only the fields relevant
// to Kind are populated.
type message struct {
	Kind byte
	From MemberID

	ViewID  uint64
	Attempt uint64

	// kindData (Seq, Sender, SenderSeq, Payload via Data)
	Data dataMsg

	// kindNack: sequences to retransmit.
	Missing []uint64

	// kindAck: cumulative delivery watermark; kindHeartbeat: highest
	// known assigned sequence; kindSafe: the safe watermark; kindBatch
	// and kindReqBatch piggyback the sender's current watermark here
	// (safe watermark from the sequencer, delivery watermark from a
	// member), saving the separate SAFE/ACK frame.
	Delivered uint64
	// kindAck, kindReqBatch: highest contiguously received sequence
	// (safe-delivery accounting; may exceed Delivered while delivery
	// awaits the safe watermark).
	Received uint64

	// kindStable
	Stable uint64

	// kindSuspect
	Suspects []MemberID

	// kindPropose, kindNewView
	Members []MemberID

	// kindNewView
	NewViewID uint64
	Primary   bool
	FinalSeq  uint64
	Msgs      []dataMsg // also kindFlushState, kindBatch, kindReqBatch

	// kindFlushState
	NextDeliver uint64
	StableSeen  uint64
	DelivTable  map[MemberID]uint64 // also kindStateSnap

	// kindStateSnap. The snapshot is split into chunks so one giant
	// application state never forms a single frame (datagram transports
	// bound frame sizes, and stream transports would stall a writer
	// queue); ChunkIdx/ChunkCnt let the joiner reassemble.
	AppState []byte
	ChunkIdx uint64
	ChunkCnt uint64

	// kindJoin: the joiner's locally recovered application state
	// version (applied command index), opaque to this layer. The
	// coordinator hands the minimum over admitted joiners to the
	// application, which may answer the snapshot request with an
	// incremental transfer instead of a full one.
	Since uint64

	// kindHeartbeat, kindBatch: a read-lease grant from the sequencer
	// (zero = no grant). The receiving member may serve leased local
	// reads for this long after receipt, minus the safety margin; see
	// Process.LeasedReadOK.
	LeaseDur time.Duration
}

func putMembers(e *codec.Encoder, ms []MemberID) {
	e.PutUint(uint64(len(ms)))
	for _, m := range ms {
		e.PutString(string(m))
	}
}

func getMembers(d *codec.Decoder) []MemberID {
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return nil
	}
	ms := make([]MemberID, 0, n)
	for i := uint64(0); i < n; i++ {
		ms = append(ms, MemberID(d.String()))
	}
	return ms
}

func putDataMsg(e *codec.Encoder, m dataMsg) {
	e.PutUint(m.Seq)
	e.PutString(string(m.Sender))
	e.PutUint(m.SenderSeq)
	e.PutBytes(m.Payload)
}

func getDataMsg(d *codec.Decoder) dataMsg {
	m := dataMsg{
		Seq:       d.Uint(),
		Sender:    MemberID(d.String()),
		SenderSeq: d.Uint(),
	}
	// Copy the payload out of the decode buffer: dataMsg outlives the
	// datagram (it sits in retransmission buffers).
	b := d.Bytes()
	m.Payload = make([]byte, len(b))
	copy(m.Payload, b)
	return m
}

func putDataMsgs(e *codec.Encoder, ms []dataMsg) {
	e.PutUint(uint64(len(ms)))
	for _, m := range ms {
		putDataMsg(e, m)
	}
}

func getDataMsgs(d *codec.Decoder) []dataMsg {
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return nil
	}
	ms := make([]dataMsg, 0, n)
	for i := uint64(0); i < n; i++ {
		ms = append(ms, getDataMsg(d))
	}
	return ms
}

func putDelivTable(e *codec.Encoder, t map[MemberID]uint64) {
	e.PutUint(uint64(len(t)))
	// Deterministic order is not required on the wire, but sorting
	// keeps encodings reproducible for tests and debugging.
	for _, m := range sortedKeys(t) {
		e.PutString(string(m))
		e.PutUint(t[m])
	}
}

func getDelivTable(d *codec.Decoder) map[MemberID]uint64 {
	n := d.Uint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return nil
	}
	t := make(map[MemberID]uint64, n)
	for i := uint64(0); i < n; i++ {
		m := MemberID(d.String())
		t[m] = d.Uint()
	}
	return t
}

// encodeSize estimates the encoder capacity a message needs.
func (m *message) encodeSize() int {
	n := 64 + len(m.Data.Payload) + len(m.AppState)
	for i := range m.Msgs {
		n += 32 + len(m.Msgs[i].Payload)
	}
	return n
}

// encode marshals the message into a fresh heap buffer the caller may
// retain indefinitely.
func (m *message) encode() []byte {
	e := codec.NewEncoder(m.encodeSize())
	m.marshal(e)
	return e.Bytes()
}

// encodeTo marshals the message into a pooled encoder. The caller
// must Release it once the bytes have been handed off (safe after
// Send: transport endpoints do not alias the payload).
func (m *message) encodeTo() *codec.Encoder {
	e := codec.GetEncoder(m.encodeSize())
	m.marshal(e)
	return e
}

func (m *message) marshal(e *codec.Encoder) {
	e.PutByte(m.Kind)
	e.PutString(string(m.From))
	e.PutUint(m.ViewID)
	e.PutUint(m.Attempt)
	switch m.Kind {
	case kindLeave:
		// header only
	case kindJoin:
		e.PutUint(m.Since)
	case kindHeartbeat:
		// Delivered carries the sender's highest known assigned
		// sequence, so peers that missed the tail learn to NACK it.
		e.PutUint(m.Delivered)
		e.PutDuration(m.LeaseDur)
	case kindData:
		putDataMsg(e, m.Data)
	case kindReq:
		e.PutUint(m.Data.SenderSeq)
		e.PutBytes(m.Data.Payload)
	case kindNack:
		e.PutUint(uint64(len(m.Missing)))
		for _, s := range m.Missing {
			e.PutUint(s)
		}
	case kindAck:
		e.PutUint(m.Delivered)
		e.PutUint(m.Received)
	case kindSafe:
		e.PutUint(m.Delivered)
	case kindStable:
		e.PutUint(m.Stable)
	case kindSuspect:
		putMembers(e, m.Suspects)
	case kindPropose:
		putMembers(e, m.Members)
	case kindFlushState:
		e.PutUint(m.NextDeliver)
		e.PutUint(m.StableSeen)
		putDelivTable(e, m.DelivTable)
		putDataMsgs(e, m.Msgs)
	case kindNewView:
		e.PutUint(m.NewViewID)
		putMembers(e, m.Members)
		e.PutBool(m.Primary)
		e.PutUint(m.FinalSeq)
		putDataMsgs(e, m.Msgs)
	case kindStateSnap:
		e.PutUint(m.NewViewID)
		putDelivTable(e, m.DelivTable)
		e.PutUint(m.ChunkIdx)
		e.PutUint(m.ChunkCnt)
		e.PutBytes(m.AppState)
	case kindBatch:
		e.PutUint(m.Delivered)
		e.PutDuration(m.LeaseDur)
		putDataMsgs(e, m.Msgs)
	case kindReqBatch:
		e.PutUint(m.Delivered)
		e.PutUint(m.Received)
		// Requests carry no Seq, and the Sender is implied by the
		// frame's From, so only (SenderSeq, Payload) pairs go on the
		// wire.
		e.PutUint(uint64(len(m.Msgs)))
		for i := range m.Msgs {
			e.PutUint(m.Msgs[i].SenderSeq)
			e.PutBytes(m.Msgs[i].Payload)
		}
	default:
		panic(fmt.Sprintf("gcs: encoding unknown message kind %d", m.Kind))
	}
}

// decodeMessage unmarshals one datagram. Unknown kinds and malformed
// messages return an error; callers drop such datagrams.
func decodeMessage(b []byte) (*message, error) {
	d := codec.NewDecoder(b)
	m := &message{
		Kind:    d.Byte(),
		From:    MemberID(d.String()),
		ViewID:  d.Uint(),
		Attempt: d.Uint(),
	}
	switch m.Kind {
	case kindLeave:
	case kindJoin:
		m.Since = d.Uint()
	case kindHeartbeat:
		m.Delivered = d.Uint()
		m.LeaseDur = d.Duration()
	case kindData:
		m.Data = getDataMsg(d)
	case kindReq:
		m.Data.Sender = m.From
		m.Data.SenderSeq = d.Uint()
		b := d.Bytes()
		m.Data.Payload = make([]byte, len(b))
		copy(m.Data.Payload, b)
	case kindNack:
		n := d.Uint()
		if d.Err() == nil && n <= uint64(d.Remaining())+1 {
			m.Missing = make([]uint64, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Missing = append(m.Missing, d.Uint())
			}
		}
	case kindAck:
		m.Delivered = d.Uint()
		m.Received = d.Uint()
	case kindSafe:
		m.Delivered = d.Uint()
	case kindStable:
		m.Stable = d.Uint()
	case kindSuspect:
		m.Suspects = getMembers(d)
	case kindPropose:
		m.Members = getMembers(d)
	case kindFlushState:
		m.NextDeliver = d.Uint()
		m.StableSeen = d.Uint()
		m.DelivTable = getDelivTable(d)
		m.Msgs = getDataMsgs(d)
	case kindNewView:
		m.NewViewID = d.Uint()
		m.Members = getMembers(d)
		m.Primary = d.Bool()
		m.FinalSeq = d.Uint()
		m.Msgs = getDataMsgs(d)
	case kindStateSnap:
		m.NewViewID = d.Uint()
		m.DelivTable = getDelivTable(d)
		m.ChunkIdx = d.Uint()
		m.ChunkCnt = d.Uint()
		b := d.Bytes()
		m.AppState = make([]byte, len(b))
		copy(m.AppState, b)
	case kindBatch:
		m.Delivered = d.Uint()
		m.LeaseDur = d.Duration()
		m.Msgs = getDataMsgs(d)
	case kindReqBatch:
		m.Delivered = d.Uint()
		m.Received = d.Uint()
		n := d.Uint()
		if d.Err() == nil && n <= uint64(d.Remaining())+1 {
			m.Msgs = make([]dataMsg, 0, n)
			for i := uint64(0); i < n; i++ {
				dm := dataMsg{Sender: m.From, SenderSeq: d.Uint()}
				b := d.Bytes()
				dm.Payload = make([]byte, len(b))
				copy(dm.Payload, b)
				m.Msgs = append(m.Msgs, dm)
			}
		}
	default:
		return nil, fmt.Errorf("gcs: unknown message kind %d", m.Kind)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("gcs: decoding kind %d: %w", m.Kind, err)
	}
	return m, nil
}
