package gcs

import "sync"

// eventQueue is an unbounded FIFO feeding the public Events channel.
// The protocol loop must never block on a slow consumer — blocking
// would stall heartbeats and get this member falsely suspected — so
// pushes append to a slice and a dispatcher goroutine drains it into
// the channel.
type eventQueue struct {
	ch chan Event

	mu     sync.Mutex
	cond   *sync.Cond
	items  []Event
	closed bool
}

func newEventQueue() *eventQueue {
	q := &eventQueue{ch: make(chan Event, 64)}
	q.cond = sync.NewCond(&q.mu)
	go q.dispatch()
	return q
}

// push appends an event. Safe only from the loop goroutine (and from
// close, which synchronizes internally).
func (q *eventQueue) push(e Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, e)
	q.mu.Unlock()
	q.cond.Signal()
}

// close marks the end of the stream. Queued events are still
// delivered before the channel closes.
func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *eventQueue) dispatch() {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 && q.closed {
			q.mu.Unlock()
			close(q.ch)
			return
		}
		e := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		q.ch <- e
	}
}
