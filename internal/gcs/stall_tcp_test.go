package gcs

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// stallProxy is a TCP forwarder interposed on the path into one head.
// While stalled it stops reading from the sender side, so the kernel
// buffers toward that head fill up exactly as they would against a
// wedged process — the scenario where a synchronous sender would block
// the group's event loop.
type stallProxy struct {
	ln      net.Listener
	target  string
	stalled atomic.Bool
	done    chan struct{}
}

func newStallProxy(t *testing.T, target string) *stallProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallProxy{ln: ln, target: target, done: make(chan struct{})}
	go p.acceptLoop()
	t.Cleanup(func() {
		close(p.done)
		ln.Close()
	})
	return p
}

func (p *stallProxy) addr() string { return p.ln.Addr().String() }

func (p *stallProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.forward(c)
	}
}

func (p *stallProxy) forward(c net.Conn) {
	defer c.Close()
	t, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer t.Close()
	buf := make([]byte, 4096)
	for {
		for p.stalled.Load() {
			select {
			case <-p.done:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		n, err := c.Read(buf)
		if err != nil {
			return
		}
		if _, err := t.Write(buf[:n]); err != nil {
			return
		}
	}
}

// TestStalledHeadDoesNotBlockSequencing is the acceptance scenario for
// the asynchronous transport path: one head stops reading from the
// network mid-view, and the surviving heads keep sequencing and
// delivering — while the wedged head is still a group member — because
// sends to it queue and drop in its per-peer writer instead of
// blocking the protocol loop.
func TestStalledHeadDoesNotBlockSequencing(t *testing.T) {
	ids := []MemberID{"b0", "b1", "b2"}
	logical := map[MemberID]transport.Addr{
		"b0": "bhost0/gcs", "b1": "bhost1/gcs", "b2": "bhost2/gcs",
	}

	// Real listeners for all three heads, plus the stall proxy fronting
	// b2. Heads b0/b1 resolve b2 through the proxy; b2 resolves
	// everyone directly.
	eps := make(map[MemberID]*tcpnet.Endpoint, 3)
	direct := tcpnet.StaticResolver{}
	proxied := tcpnet.StaticResolver{}
	for _, id := range ids {
		res := direct
		if id != "b2" {
			res = proxied
		}
		ep, err := tcpnet.Listen(logical[id], "127.0.0.1:0", res)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[id] = ep
	}
	proxy := newStallProxy(t, eps["b2"].TCPAddr())
	for _, id := range ids {
		direct[logical[id]] = eps[id].TCPAddr()
		proxied[logical[id]] = eps[id].TCPAddr()
	}
	proxied[logical["b2"]] = proxy.addr()

	// FailTimeout is far beyond the test window: the stalled head must
	// remain a member the whole time, so continued delivery cannot be
	// explained by its exclusion from the view.
	mkcfg := func(id MemberID) Config {
		cfg := Config{
			Self:           id,
			Endpoint:       eps[id],
			Peers:          logical,
			InitialMembers: ids,
		}
		fastTimings(&cfg)
		cfg.FailTimeout = 30 * time.Second
		cfg.FlushTimeout = 2 * time.Second
		return cfg
	}
	// b0 and b1 first, so their senders toward b2 are created through
	// the proxy before b2's own direct connections appear.
	var obs [3]*observer
	for i, id := range []MemberID{"b0", "b1"} {
		p, err := Start(mkcfg(id))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		obs[i] = observe(p)
	}
	time.Sleep(200 * time.Millisecond)
	p2, err := Start(mkcfg("b2"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p2.Close)
	obs[2] = observe(p2)

	waitFor(t, 15*time.Second, "three-member view over TCP", func() bool {
		for _, o := range obs {
			if v, ok := o.lastView(); !ok || len(v.Members) != 3 || !v.Primary {
				return false
			}
		}
		return true
	})
	// Sanity: the proxied path works while unstalled.
	if err := obs[1].p.Broadcast([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup delivery everywhere", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != 1 {
				return false
			}
		}
		return true
	})

	// b2 stops reading. Push enough bulk through the group to overrun
	// the kernel buffers toward it many times over: a blocking sender
	// would wedge the sequencer loop partway through this burst.
	proxy.stalled.Store(true)
	const burst = 64
	payload := make([]byte, 32<<10)
	start := time.Now()
	for k := 0; k < burst; k++ {
		copy(payload, fmt.Sprintf("bulk-%d", k))
		if err := obs[1].p.Broadcast(payload); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "survivors deliver past the stalled head", func() bool {
		return len(obs[0].deliveredPayloads()) == 1+burst &&
			len(obs[1].deliveredPayloads()) == 1+burst
	})
	elapsed := time.Since(start)

	// The stalled head must still be in the installed view: delivery
	// continued around it, not after its removal.
	for _, i := range []int{0, 1} {
		if v, _ := obs[i].lastView(); len(v.Members) != 3 {
			t.Fatalf("member %d view shrank to %v during the stall", i, v.Members)
		}
	}
	t.Logf("delivered %d×32KiB past a stalled member in %v", burst, elapsed)
}
