package gcs

import (
	"fmt"
	"testing"
	"time"

	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// safeGroup builds a group with safe delivery (and optionally
// loopback self-delivery) enabled.
func safeGroup(t *testing.T, net *simnet.Network, n int, loopback bool) []*observer {
	return group(t, net, n, func(i int, c *Config) {
		c.SafeDelivery = true
		c.LoopbackSelfDelivery = loopback
	})
}

func TestSafeDeliveryTotalOrder(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := safeGroup(t, net, 3, true)

	const perSender = 15
	for i, o := range obs {
		go func(i int, o *observer) {
			for k := 0; k < perSender; k++ {
				o.p.Broadcast([]byte(fmt.Sprintf("m%d-%d", i, k)))
			}
		}(i, o)
	}
	total := perSender * len(obs)
	waitFor(t, 15*time.Second, "all safe deliveries", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != total {
				return false
			}
		}
		return true
	})
	ref := obs[0].deliveredPayloads()
	for _, o := range obs[1:] {
		got := o.deliveredPayloads()
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("safe total order violated at %d: %q vs %q", k, got[k], ref[k])
			}
		}
	}
}

func TestSafeDeliveryWithLoss(t *testing.T) {
	// Lost acks must be recovered by periodic re-acks, not stall
	// delivery forever.
	net := simnet.New(simnet.Config{
		Latency:  simnet.Latency{Remote: time.Millisecond},
		DropRate: 0.1,
		Seed:     11,
	})
	defer net.Close()
	obs := safeGroup(t, net, 3, false)

	for k := 0; k < 10; k++ {
		obs[k%3].p.Broadcast([]byte(fmt.Sprintf("m%d", k)))
	}
	waitFor(t, 20*time.Second, "safe deliveries despite loss", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != 10 {
				return false
			}
		}
		return true
	})
}

func TestSafeDeliverySurvivesFailure(t *testing.T) {
	// A member dying mid-ack-round must not wedge delivery: the view
	// change's agreed final sequence supersedes the ack condition.
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := safeGroup(t, net, 3, false)

	obs[1].p.Broadcast([]byte("before"))
	waitFor(t, 5*time.Second, "initial delivery", func() bool {
		return len(obs[0].deliveredPayloads()) == 1
	})

	net.CrashHost("host2")
	obs[2].p.Close()
	obs[1].p.Broadcast([]byte("during"))

	waitFor(t, 15*time.Second, "delivery resumes after view change", func() bool {
		for _, i := range []int{0, 1} {
			d := obs[i].deliveredPayloads()
			if len(d) != 2 || d[1] != "during" {
				return false
			}
		}
		return true
	})
}

func TestLoopbackSelfDeliverySingleton(t *testing.T) {
	// With loopback, self-delivery pays the local hop; semantics are
	// unchanged.
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Local: 5 * time.Millisecond}})
	defer net.Close()
	ep, _ := net.Endpoint("h/gcs")
	cfg := Config{
		Self:                 "solo",
		Endpoint:             ep,
		Peers:                map[MemberID]transport.Addr{"solo": "h/gcs"},
		Bootstrap:            true,
		LoopbackSelfDelivery: true,
	}
	fastTimings(&cfg)
	p, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	o := observe(p)

	start := time.Now()
	p.Broadcast([]byte("one"))
	waitFor(t, 5*time.Second, "loopback delivery", func() bool {
		return len(o.deliveredPayloads()) == 1
	})
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Errorf("delivery took %v; loopback should pay the ~5ms local hop", d)
	}
}

func TestSafeSlowerThanAgreed(t *testing.T) {
	// The ablation behind the latency model: safe delivery costs an
	// extra acknowledgment round.
	run := func(safe bool) time.Duration {
		net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: 10 * time.Millisecond}})
		defer net.Close()
		obs := group(t, net, 3, func(i int, c *Config) {
			c.SafeDelivery = safe
		})
		// Warm up.
		obs[0].p.Broadcast([]byte("warm"))
		waitFor(t, 10*time.Second, "warmup", func() bool {
			return len(obs[2].deliveredPayloads()) == 1
		})
		start := time.Now()
		obs[2].p.Broadcast([]byte("timed"))
		waitFor(t, 10*time.Second, "timed delivery", func() bool {
			return len(obs[2].deliveredPayloads()) == 2
		})
		return time.Since(start)
	}
	agreed := run(false)
	safe := run(true)
	if safe <= agreed {
		t.Errorf("safe (%v) should be slower than agreed (%v)", safe, agreed)
	}
}
