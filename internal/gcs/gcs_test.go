package gcs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// fastTimings keeps tests quick while leaving headroom over the
// simulated network latency.
func fastTimings(c *Config) {
	c.Heartbeat = 10 * time.Millisecond
	c.FailTimeout = 80 * time.Millisecond
	c.ResendInterval = 40 * time.Millisecond
	c.FlushTimeout = 150 * time.Millisecond
	c.JoinInterval = 50 * time.Millisecond
	c.SnapshotTimeout = 500 * time.Millisecond
}

// observer drains a process's event stream and records everything.
type observer struct {
	p *Process

	mu         sync.Mutex
	deliveries []DeliverEvent
	views      []View
	transfers  [][]byte
	// snapshot, when non-nil, answers SnapshotRequestEvents; nil
	// replies with the concatenation of delivered payloads, which
	// makes state transfer verifiable.
	snapshot func() []byte
	ignore   bool // when true, never reply to snapshot requests
}

func observe(p *Process) *observer {
	o := &observer{p: p}
	go func() {
		for e := range p.Events() {
			switch ev := e.(type) {
			case DeliverEvent:
				o.mu.Lock()
				o.deliveries = append(o.deliveries, ev)
				o.mu.Unlock()
			case ViewEvent:
				o.mu.Lock()
				o.views = append(o.views, ev.View)
				o.mu.Unlock()
			case StateTransferEvent:
				o.mu.Lock()
				o.transfers = append(o.transfers, ev.State)
				o.mu.Unlock()
			case SnapshotRequestEvent:
				o.mu.Lock()
				ignore := o.ignore
				var state []byte
				if o.snapshot != nil {
					state = o.snapshot()
				} else {
					state = o.concatLocked()
				}
				o.mu.Unlock()
				if !ignore {
					ev.Reply(state)
				}
			}
		}
	}()
	return o
}

func (o *observer) concatLocked() []byte {
	var b []byte
	for _, d := range o.deliveries {
		b = append(b, d.Payload...)
		b = append(b, '|')
	}
	return b
}

func (o *observer) deliveredPayloads() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, len(o.deliveries))
	for i, d := range o.deliveries {
		out[i] = string(d.Payload)
	}
	return out
}

func (o *observer) viewCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.views)
}

func (o *observer) lastView() (View, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.views) == 0 {
		return View{}, false
	}
	return o.views[len(o.views)-1], true
}

func (o *observer) transferCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.transfers)
}

// group spins up a static group of n members named m0..m(n-1), one
// per simulated host.
func group(t *testing.T, net *simnet.Network, n int, mutate func(i int, c *Config)) []*observer {
	t.Helper()
	ids := make([]MemberID, n)
	peers := make(map[MemberID]transport.Addr, n)
	for i := 0; i < n; i++ {
		ids[i] = MemberID(fmt.Sprintf("m%d", i))
		peers[ids[i]] = transport.Addr(fmt.Sprintf("host%d/gcs", i))
	}
	obs := make([]*observer, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(peers[ids[i]])
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Self:           ids[i],
			Endpoint:       ep,
			Peers:          peers,
			InitialMembers: ids,
		}
		fastTimings(&cfg)
		if mutate != nil {
			mutate(i, &cfg)
		}
		p, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		obs[i] = observe(p)
		t.Cleanup(p.Close)
	}
	return obs
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSingletonBootstrap(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("h/gcs")
	cfg := Config{
		Self:      "solo",
		Endpoint:  ep,
		Peers:     map[MemberID]transport.Addr{"solo": "h/gcs"},
		Bootstrap: true,
	}
	fastTimings(&cfg)
	p, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	o := observe(p)

	waitFor(t, time.Second, "initial view", func() bool { return o.viewCount() == 1 })
	v, _ := o.lastView()
	if v.ID != 1 || !v.Primary || len(v.Members) != 1 {
		t.Fatalf("initial view = %v", v)
	}
	for i := 0; i < 10; i++ {
		if err := p.Broadcast([]byte(fmt.Sprintf("msg%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "self-delivery", func() bool {
		return len(o.deliveredPayloads()) == 10
	})
	got := o.deliveredPayloads()
	for i, s := range got {
		if s != fmt.Sprintf("msg%d", i) {
			t.Fatalf("delivery %d = %q (FIFO violated)", i, s)
		}
	}
}

func TestStaticGroupTotalOrder(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	const perSender = 20
	var wg sync.WaitGroup
	for i, o := range obs {
		wg.Add(1)
		go func(i int, o *observer) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				if err := o.p.Broadcast([]byte(fmt.Sprintf("m%d-%d", i, k))); err != nil {
					t.Errorf("broadcast: %v", err)
					return
				}
			}
		}(i, o)
	}
	wg.Wait()

	total := perSender * len(obs)
	waitFor(t, 10*time.Second, "all deliveries", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != total {
				return false
			}
		}
		return true
	})

	ref := obs[0].deliveredPayloads()
	for i, o := range obs[1:] {
		got := o.deliveredPayloads()
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("member %d delivery %d = %q, member 0 has %q (total order violated)", i+1, k, got[k], ref[k])
			}
		}
	}
	// Per-sender FIFO within the total order.
	for s := 0; s < len(obs); s++ {
		last := -1
		for _, pay := range ref {
			var snd, k int
			fmt.Sscanf(pay, "m%d-%d", &snd, &k)
			if snd == s {
				if k != last+1 {
					t.Fatalf("sender %d FIFO violated: %d after %d", s, k, last)
				}
				last = k
			}
		}
		if last != perSender-1 {
			t.Fatalf("sender %d: delivered %d of %d", s, last+1, perSender)
		}
	}
}

func TestTotalOrderUnderJitterAndLoss(t *testing.T) {
	net := simnet.New(simnet.Config{
		Latency:  simnet.Latency{Remote: time.Millisecond, Jitter: 3 * time.Millisecond},
		DropRate: 0.03,
		Seed:     7,
	})
	defer net.Close()
	obs := group(t, net, 4, nil)

	const perSender = 15
	var wg sync.WaitGroup
	for i, o := range obs {
		wg.Add(1)
		go func(i int, o *observer) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				o.p.Broadcast([]byte(fmt.Sprintf("m%d-%d", i, k)))
			}
		}(i, o)
	}
	wg.Wait()

	total := perSender * len(obs)
	waitFor(t, 20*time.Second, "all deliveries despite loss", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) < total {
				return false
			}
		}
		return true
	})
	ref := obs[0].deliveredPayloads()
	for _, o := range obs[1:] {
		got := o.deliveredPayloads()
		if len(got) != len(ref) {
			t.Fatalf("delivery counts differ: %d vs %d", len(got), len(ref))
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("total order violated at %d: %q vs %q", k, got[k], ref[k])
			}
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, pay := range ref {
		if seen[pay] {
			t.Fatalf("duplicate delivery of %q", pay)
		}
		seen[pay] = true
	}
}

func TestMemberFailureInstallsNewView(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	// Seed some traffic.
	for i := 0; i < 5; i++ {
		obs[0].p.Broadcast([]byte(fmt.Sprintf("pre%d", i)))
	}
	waitFor(t, 5*time.Second, "pre-failure deliveries", func() bool {
		return len(obs[2].deliveredPayloads()) == 5
	})

	// Kill the middle member (not the sequencer).
	net.CrashHost("host1")
	obs[1].p.Close()

	waitFor(t, 10*time.Second, "survivors install 2-member view", func() bool {
		for _, i := range []int{0, 2} {
			v, ok := obs[i].lastView()
			if !ok || len(v.Members) != 2 || !v.Primary {
				return false
			}
		}
		return true
	})

	// Service continues after the failure.
	obs[2].p.Broadcast([]byte("post"))
	waitFor(t, 5*time.Second, "post-failure delivery", func() bool {
		d := obs[0].deliveredPayloads()
		return len(d) == 6 && d[5] == "post"
	})
}

func TestSequencerFailureMidBurst(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	// m0 is the sequencer. Submit from m1 and m2 while killing m0.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 30; k++ {
			obs[1].p.Broadcast([]byte(fmt.Sprintf("a%d", k)))
			obs[2].p.Broadcast([]byte(fmt.Sprintf("b%d", k)))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	net.CrashHost("host0")
	obs[0].p.Close()
	<-done

	waitFor(t, 15*time.Second, "survivors deliver all survivor messages", func() bool {
		for _, i := range []int{1, 2} {
			count := map[byte]int{}
			for _, p := range obs[i].deliveredPayloads() {
				count[p[0]]++
			}
			if count['a'] != 30 || count['b'] != 30 {
				return false
			}
		}
		return true
	})

	// Identical order at both survivors, no duplicates.
	d1, d2 := obs[1].deliveredPayloads(), obs[2].deliveredPayloads()
	// Messages from the dead m0 cannot exist (it never sent any);
	// survivor streams must match exactly.
	if len(d1) != len(d2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(d1), len(d2))
	}
	seen := map[string]bool{}
	for k := range d1 {
		if d1[k] != d2[k] {
			t.Fatalf("order differs at %d: %q vs %q", k, d1[k], d2[k])
		}
		if seen[d1[k]] {
			t.Fatalf("duplicate delivery %q", d1[k])
		}
		seen[d1[k]] = true
	}
}

func TestMultipleSimultaneousFailures(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 4, nil)

	obs[3].p.Broadcast([]byte("before"))
	waitFor(t, 5*time.Second, "initial delivery", func() bool {
		return len(obs[0].deliveredPayloads()) == 1
	})

	// Kill two heads at once, including the sequencer — the paper's
	// "multiple simultaneous failures" functional test.
	net.CrashHost("host0")
	net.CrashHost("host2")
	obs[0].p.Close()
	obs[2].p.Close()

	waitFor(t, 15*time.Second, "2-member view", func() bool {
		for _, i := range []int{1, 3} {
			v, ok := obs[i].lastView()
			if !ok || len(v.Members) != 2 {
				return false
			}
		}
		return true
	})
	obs[1].p.Broadcast([]byte("after"))
	waitFor(t, 5*time.Second, "post-failure delivery at both", func() bool {
		for _, i := range []int{1, 3} {
			d := obs[i].deliveredPayloads()
			if len(d) != 2 || d[1] != "after" {
				return false
			}
		}
		return true
	})
	// FailStop policy: the surviving pair stays primary even though it
	// is not a majority of the original four.
	v, _ := obs[1].lastView()
	if !v.Primary {
		t.Fatal("FailStop survivors should remain primary")
	}
}

func TestVirtualSynchronyAtFailure(t *testing.T) {
	// All survivors must agree on the exact set of messages delivered
	// in the old view (before their view-change event).
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: 2 * time.Millisecond, Jitter: 2 * time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				obs[i].p.Broadcast([]byte(fmt.Sprintf("s%d-%d", i, k)))
				k++
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	net.CrashHost("host0") // kill the sequencer mid-stream
	obs[0].p.Close()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	waitFor(t, 15*time.Second, "survivors install new view", func() bool {
		for _, i := range []int{1, 2} {
			if v, ok := obs[i].lastView(); !ok || v.ID < 2 || len(v.Members) != 2 {
				return false
			}
		}
		return true
	})

	// Compare the old-view delivery prefix: deliveries with the
	// original view ID must be identical at both survivors.
	prefix := func(o *observer) []string {
		o.mu.Lock()
		defer o.mu.Unlock()
		var out []string
		for _, d := range o.deliveries {
			if d.ViewID == 1 {
				out = append(out, string(d.Payload))
			}
		}
		return out
	}
	waitFor(t, 10*time.Second, "quiescence", func() bool {
		a, b := len(obs[1].deliveredPayloads()), len(obs[2].deliveredPayloads())
		time.Sleep(100 * time.Millisecond)
		return len(obs[1].deliveredPayloads()) == a && len(obs[2].deliveredPayloads()) == b
	})
	p1, p2 := prefix(obs[1]), prefix(obs[2])
	if len(p1) != len(p2) {
		t.Fatalf("old-view delivery sets differ in size: %d vs %d", len(p1), len(p2))
	}
	for k := range p1 {
		if p1[k] != p2[k] {
			t.Fatalf("old-view deliveries differ at %d: %q vs %q", k, p1[k], p2[k])
		}
	}
}

func TestJoinWithStateTransfer(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()

	peers := map[MemberID]transport.Addr{
		"m0": "host0/gcs",
		"m1": "host1/gcs",
	}
	ep0, _ := net.Endpoint("host0/gcs")
	cfg0 := Config{Self: "m0", Endpoint: ep0, Peers: peers, Bootstrap: true}
	fastTimings(&cfg0)
	p0, err := Start(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	o0 := observe(p0)

	for i := 0; i < 5; i++ {
		p0.Broadcast([]byte(fmt.Sprintf("old%d", i)))
	}
	waitFor(t, 5*time.Second, "founder deliveries", func() bool {
		return len(o0.deliveredPayloads()) == 5
	})

	ep1, _ := net.Endpoint("host1/gcs")
	cfg1 := Config{Self: "m1", Endpoint: ep1, Peers: peers}
	fastTimings(&cfg1)
	p1, err := Start(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	o1 := observe(p1)

	waitFor(t, 10*time.Second, "joiner admitted", func() bool {
		v, ok := o1.lastView()
		return ok && len(v.Members) == 2
	})
	if o1.transferCount() != 1 {
		t.Fatalf("joiner got %d state transfers, want 1", o1.transferCount())
	}
	// The transferred snapshot is the founder's concatenated history.
	o1.mu.Lock()
	snap := string(o1.transfers[0])
	o1.mu.Unlock()
	want := "old0|old1|old2|old3|old4|"
	if snap != want {
		t.Fatalf("snapshot = %q, want %q", snap, want)
	}

	// New messages flow to both, in the same order.
	p1.Broadcast([]byte("from-joiner"))
	p0.Broadcast([]byte("from-founder"))
	waitFor(t, 5*time.Second, "post-join deliveries", func() bool {
		return len(o1.deliveredPayloads()) == 2 && len(o0.deliveredPayloads()) == 7
	})
	d0 := o0.deliveredPayloads()[5:]
	d1 := o1.deliveredPayloads()
	for k := range d0 {
		if d0[k] != d1[k] {
			t.Fatalf("post-join order differs: %v vs %v", d0, d1)
		}
	}
}

func TestLeaveProducesViewQuickly(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	waitFor(t, 5*time.Second, "initial views", func() bool {
		for _, o := range obs {
			if o.viewCount() < 1 {
				return false
			}
		}
		return true
	})

	start := time.Now()
	obs[1].p.Leave()
	waitFor(t, 5*time.Second, "2-member view", func() bool {
		for _, i := range []int{0, 2} {
			v, ok := obs[i].lastView()
			if !ok || len(v.Members) != 2 {
				return false
			}
		}
		return true
	})
	// Leave is announced, so exclusion should not wait out the full
	// failure-detection timeout.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("leave took %v", elapsed)
	}
}

func TestPartitionFailStopSplitBrain(t *testing.T) {
	// Under the paper's fail-stop assumption, a real partition makes
	// both fragments continue as primary — the documented limitation.
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 4, nil)

	net.Partition("host0", "host2")
	net.Partition("host0", "host3")
	net.Partition("host1", "host2")
	net.Partition("host1", "host3")

	waitFor(t, 15*time.Second, "both fragments form views", func() bool {
		for _, o := range obs {
			v, ok := o.lastView()
			if !ok || len(v.Members) != 2 {
				return false
			}
		}
		return true
	})
	for i, o := range obs {
		if v, _ := o.lastView(); !v.Primary {
			t.Errorf("member %d: fragment not primary under FailStop", i)
		}
	}
}

func TestPartitionMajorityPolicy(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, func(i int, c *Config) {
		c.PartitionPolicy = Majority
	})

	net.Isolate("host2")

	waitFor(t, 15*time.Second, "majority fragment installs primary view", func() bool {
		for _, i := range []int{0, 1} {
			v, ok := obs[i].lastView()
			if !ok || len(v.Members) != 2 || !v.Primary {
				return false
			}
		}
		return true
	})
	waitFor(t, 15*time.Second, "minority fragment loses primary", func() bool {
		v, ok := obs[2].lastView()
		return ok && len(v.Members) == 1 && !v.Primary
	})
}

func TestSnapshotTimeoutAbortsJoin(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()

	peers := map[MemberID]transport.Addr{"m0": "host0/gcs", "m1": "host1/gcs"}
	ep0, _ := net.Endpoint("host0/gcs")
	cfg0 := Config{Self: "m0", Endpoint: ep0, Peers: peers, Bootstrap: true}
	fastTimings(&cfg0)
	cfg0.SnapshotTimeout = 100 * time.Millisecond
	p0, err := Start(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	o0 := observe(p0)
	o0.mu.Lock()
	o0.ignore = true // application never answers snapshot requests
	o0.mu.Unlock()

	ep1, _ := net.Endpoint("host1/gcs")
	cfg1 := Config{Self: "m1", Endpoint: ep1, Peers: peers}
	fastTimings(&cfg1)
	p1, err := Start(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	o1 := observe(p1)

	// The join must not complete, and the founder must keep working.
	time.Sleep(time.Second)
	if o1.viewCount() != 0 {
		t.Fatal("joiner was admitted without a state snapshot")
	}
	p0.Broadcast([]byte("still-alive"))
	waitFor(t, 5*time.Second, "founder still delivers", func() bool {
		d := o0.deliveredPayloads()
		return len(d) >= 1 && d[len(d)-1] == "still-alive"
	})
}

func TestBroadcastAfterClose(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("h/gcs")
	cfg := Config{Self: "solo", Endpoint: ep, Peers: map[MemberID]transport.Addr{"solo": "h/gcs"}, Bootstrap: true}
	fastTimings(&cfg)
	p, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Broadcast([]byte("x")); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestStartValidation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, _ := net.Endpoint("h/gcs")
	if _, err := Start(Config{Endpoint: ep, Peers: map[MemberID]transport.Addr{"x": "h/gcs"}}); err == nil {
		t.Error("missing Self should fail")
	}
	if _, err := Start(Config{Self: "x", Peers: map[MemberID]transport.Addr{"x": "h/gcs"}}); err == nil {
		t.Error("missing Endpoint should fail")
	}
	if _, err := Start(Config{Self: "x", Endpoint: ep, Peers: map[MemberID]transport.Addr{"y": "h/gcs"}}); err == nil {
		t.Error("Peers without Self should fail")
	}
	if _, err := Start(Config{Self: "x", Endpoint: ep, Peers: map[MemberID]transport.Addr{"x": "h/gcs"}, InitialMembers: []MemberID{"y"}}); err == nil {
		t.Error("InitialMembers without Self should fail")
	}
}
