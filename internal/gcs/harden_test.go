package gcs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"joshua/internal/simnet"
	"joshua/internal/transport"
)

// This file stresses the view-change machinery: coordinator death
// mid-flush, cascading failures, churn, backpressure, and large
// payloads.

func TestCoordinatorFailsDuringFlush(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 4, nil)

	obs[3].p.Broadcast([]byte("before"))
	waitFor(t, 5*time.Second, "initial delivery", func() bool {
		return len(obs[0].deliveredPayloads()) == 1
	})

	// Kill m1 to trigger a flush coordinated by m0, then kill m0 (the
	// coordinator and sequencer) while that flush runs. m2 must take
	// over and finish the job.
	net.CrashHost("host1")
	obs[1].p.Close()
	time.Sleep(30 * time.Millisecond) // inside the detection/flush window
	net.CrashHost("host0")
	obs[0].p.Close()

	waitFor(t, 20*time.Second, "survivors install 2-member view", func() bool {
		for _, i := range []int{2, 3} {
			v, ok := obs[i].lastView()
			if !ok || len(v.Members) != 2 || !v.Primary {
				return false
			}
		}
		return true
	})
	obs[2].p.Broadcast([]byte("after"))
	waitFor(t, 10*time.Second, "delivery resumes", func() bool {
		for _, i := range []int{2, 3} {
			d := obs[i].deliveredPayloads()
			if len(d) != 2 || d[1] != "after" {
				return false
			}
		}
		return true
	})
}

func TestCascadingFailuresDownToOne(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 5, nil)

	obs[4].p.Broadcast([]byte("m0"))
	waitFor(t, 5*time.Second, "initial delivery", func() bool {
		return len(obs[4].deliveredPayloads()) == 1
	})

	// Kill members one by one, fastest-first (always the current
	// sequencer), until only m4 is left.
	for i := 0; i < 4; i++ {
		net.CrashHost(fmt.Sprintf("host%d", i))
		obs[i].p.Close()
		time.Sleep(50 * time.Millisecond)
	}

	waitFor(t, 30*time.Second, "singleton view at the last survivor", func() bool {
		v, ok := obs[4].lastView()
		return ok && len(v.Members) == 1 && v.Primary
	})
	// The sole survivor still provides the service (it sequences for
	// itself now).
	obs[4].p.Broadcast([]byte("alone"))
	waitFor(t, 10*time.Second, "solo delivery", func() bool {
		d := obs[4].deliveredPayloads()
		return len(d) >= 2 && d[len(d)-1] == "alone"
	})
}

func TestWindowBackpressure(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 2, func(i int, c *Config) {
		c.Window = 4 // tiny send window: Broadcast must block, not fail
	})

	const count = 60
	done := make(chan error, 1)
	go func() {
		for k := 0; k < count; k++ {
			if err := obs[1].p.Broadcast([]byte(fmt.Sprintf("w%d", k))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("broadcast under backpressure: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("broadcasts wedged under backpressure")
	}
	waitFor(t, 20*time.Second, "all delivered in order", func() bool {
		return len(obs[0].deliveredPayloads()) == count
	})
	for k, pay := range obs[0].deliveredPayloads() {
		if pay != fmt.Sprintf("w%d", k) {
			t.Fatalf("order violated at %d: %q", k, pay)
		}
	}
}

func TestLargePayloads(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	big := bytes.Repeat([]byte("0123456789abcdef"), 8192) // 128 KiB
	if err := obs[1].p.Broadcast(big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "large payload delivered everywhere", func() bool {
		for _, o := range obs {
			d := o.deliveredPayloads()
			if len(d) != 1 || len(d[0]) != len(big) {
				return false
			}
		}
		return true
	})
	o := obs[2]
	o.mu.Lock()
	got := o.deliveries[0].Payload
	o.mu.Unlock()
	if !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestRepeatedLeaveJoinChurn(t *testing.T) {
	// One member repeatedly leaves and rejoins while traffic flows;
	// membership and delivery must stay consistent throughout.
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()

	peers := map[MemberID]transport.Addr{
		"m0": "host0/gcs", "m1": "host1/gcs", "m2": "host2/gcs",
	}
	mk := func(self MemberID, host string, initial []MemberID) *observer {
		ep, err := net.Endpoint(transport.Addr(host + "/gcs"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Self: self, Endpoint: ep, Peers: peers, InitialMembers: initial}
		fastTimings(&cfg)
		p, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		o := observe(p)
		t.Cleanup(p.Close)
		return o
	}
	initial := []MemberID{"m0", "m1"}
	o0 := mk("m0", "host0", initial)
	o1 := mk("m1", "host1", initial)

	waitFor(t, 10*time.Second, "base group", func() bool {
		v, ok := o0.lastView()
		return ok && len(v.Members) == 2
	})

	sent := 0
	for round := 0; round < 3; round++ {
		// m2 joins.
		o2 := mk("m2", "host2", nil)
		waitFor(t, 15*time.Second, "m2 admitted", func() bool {
			v, ok := o2.lastView()
			return ok && len(v.Members) == 3
		})
		o0.p.Broadcast([]byte(fmt.Sprintf("in-round-%d", round)))
		sent++
		waitFor(t, 10*time.Second, "delivery with m2 present", func() bool {
			d := o2.deliveredPayloads()
			return len(d) >= 1 && d[len(d)-1] == fmt.Sprintf("in-round-%d", round)
		})
		// m2 leaves gracefully; its endpoint frees the address for the
		// next round.
		o2.p.Leave()
		waitFor(t, 15*time.Second, "m2 excluded", func() bool {
			v, ok := o0.lastView()
			return ok && len(v.Members) == 2
		})
	}

	// The stable members saw every message exactly once, same order.
	waitFor(t, 10*time.Second, "stable members caught up", func() bool {
		return len(o0.deliveredPayloads()) == sent && len(o1.deliveredPayloads()) == sent
	})
	d0, d1 := o0.deliveredPayloads(), o1.deliveredPayloads()
	for k := range d0 {
		if d0[k] != d1[k] {
			t.Fatalf("stable members disagree at %d: %q vs %q", k, d0[k], d1[k])
		}
	}
}

func TestStatsCounters(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 2, nil)

	for k := 0; k < 5; k++ {
		obs[1].p.Broadcast([]byte("x"))
	}
	waitFor(t, 10*time.Second, "deliveries", func() bool {
		return len(obs[0].deliveredPayloads()) == 5 && len(obs[1].deliveredPayloads()) == 5
	})

	sender := obs[1].p.Stats()
	if sender.Broadcasts != 5 {
		t.Errorf("sender broadcasts = %d, want 5", sender.Broadcasts)
	}
	if sender.Delivered != 5 {
		t.Errorf("sender delivered = %d, want 5", sender.Delivered)
	}
	if sender.Views == 0 {
		t.Error("sender views = 0")
	}
	seq := obs[0].p.Stats() // m0 is the sequencer
	if seq.Sequenced != 5 {
		t.Errorf("sequencer sequenced = %d, want 5", seq.Sequenced)
	}

	// A failure triggers a flush attempt at the new coordinator.
	net.CrashHost("host0")
	obs[0].p.Close()
	waitFor(t, 15*time.Second, "view change", func() bool {
		v, ok := obs[1].lastView()
		return ok && len(v.Members) == 1
	})
	after := obs[1].p.Stats()
	if after.FlushAttempts == 0 {
		t.Error("survivor coordinated no flush")
	}
	if after.Views < 2 {
		t.Errorf("survivor views = %d, want >= 2", after.Views)
	}
}

func TestStabilityGarbageCollection(t *testing.T) {
	// The retransmission buffer must drain once every member has
	// delivered (stability watermark), or long-running groups leak.
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil)

	const count = 300
	for k := 0; k < count; k++ {
		obs[1].p.Broadcast([]byte("gc"))
	}
	waitFor(t, 20*time.Second, "all delivered", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != count {
				return false
			}
		}
		return true
	})
	// Several ack/stability rounds later the buffers must be (nearly)
	// empty at every member, including the sequencer.
	waitFor(t, 10*time.Second, "buffers drained by stability GC", func() bool {
		for _, o := range obs {
			if o.p.Buffered() > 8 {
				return false
			}
		}
		return true
	})
}
