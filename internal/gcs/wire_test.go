package gcs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWireRoundTripAllKinds(t *testing.T) {
	msgs := []*message{
		{Kind: kindHeartbeat, From: "a", ViewID: 7},
		{Kind: kindHeartbeat, From: "a", ViewID: 7, Delivered: 42}, // tail advertisement
		{Kind: kindAck, From: "b", ViewID: 2, Delivered: 9, Received: 12},
		{Kind: kindSafe, From: "a", ViewID: 2, Delivered: 11},
		{Kind: kindJoin, From: "newguy"},
		{Kind: kindLeave, From: "b", ViewID: 3},
		{Kind: kindData, From: "a", ViewID: 2, Data: dataMsg{Seq: 9, Sender: "c", SenderSeq: 4, Payload: []byte("hi")}},
		{Kind: kindReq, From: "b", ViewID: 2, Data: dataMsg{Sender: "b", SenderSeq: 11, Payload: []byte("req")}},
		{Kind: kindNack, From: "c", ViewID: 2, Missing: []uint64{3, 4, 9}},
		{Kind: kindAck, From: "c", ViewID: 2, Delivered: 42},
		{Kind: kindStable, From: "a", ViewID: 2, Stable: 40},
		{Kind: kindSuspect, From: "a", ViewID: 2, Suspects: []MemberID{"b", "c"}},
		{Kind: kindPropose, From: "a", ViewID: 2, Attempt: 3, Members: []MemberID{"a", "c"}},
		{
			Kind: kindFlushState, From: "c", ViewID: 2, Attempt: 3,
			NextDeliver: 10, StableSeen: 5,
			DelivTable: map[MemberID]uint64{"a": 3, "c": 7},
			Msgs: []dataMsg{
				{Seq: 6, Sender: "a", SenderSeq: 2, Payload: []byte("x")},
				{Seq: 7, Sender: "c", SenderSeq: 7, Payload: nil},
			},
		},
		{
			Kind: kindNewView, From: "a", ViewID: 2, Attempt: 3,
			NewViewID: 5, Members: []MemberID{"a", "c", "d"}, Primary: true, FinalSeq: 9,
			Msgs: []dataMsg{{Seq: 8, Sender: "a", SenderSeq: 3, Payload: []byte("y")}},
		},
		{
			Kind: kindStateSnap, From: "a", ViewID: 2, Attempt: 3, NewViewID: 5,
			DelivTable: map[MemberID]uint64{"a": 3},
			AppState:   []byte("app-bytes"),
		},
		{
			Kind: kindBatch, From: "a", ViewID: 2, Delivered: 17,
			Msgs: []dataMsg{
				{Seq: 18, Sender: "b", SenderSeq: 6, Payload: []byte("one")},
				{Seq: 19, Sender: "a", SenderSeq: 9, Payload: nil},
				{Seq: 20, Sender: "c", SenderSeq: 2, Payload: []byte("three")},
			},
		},
		{Kind: kindBatch, From: "a", ViewID: 2}, // empty batch still round-trips
		{
			Kind: kindReqBatch, From: "b", ViewID: 2, Delivered: 8, Received: 11,
			Msgs: []dataMsg{
				{Sender: "b", SenderSeq: 12, Payload: []byte("r1")},
				{Sender: "b", SenderSeq: 13, Payload: []byte("r2")},
			},
		},
		{Kind: kindReqBatch, From: "b", ViewID: 2, Delivered: 3, Received: 3},
	}
	for _, m := range msgs {
		b := m.encode()
		got, err := decodeMessage(b)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", m.Kind, err)
		}
		normalize(m)
		normalize(got)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %d: roundtrip mismatch\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

// normalize maps nil and empty containers to a canonical form for
// comparison; the wire format does not distinguish them.
func normalize(m *message) {
	if len(m.Missing) == 0 {
		m.Missing = nil
	}
	if len(m.Suspects) == 0 {
		m.Suspects = nil
	}
	if len(m.Members) == 0 {
		m.Members = nil
	}
	if len(m.Msgs) == 0 {
		m.Msgs = nil
	}
	if len(m.DelivTable) == 0 {
		m.DelivTable = nil
	}
	if len(m.AppState) == 0 {
		m.AppState = nil
	}
	if len(m.Data.Payload) == 0 {
		m.Data.Payload = nil
	}
	for i := range m.Msgs {
		if len(m.Msgs[i].Payload) == 0 {
			m.Msgs[i].Payload = nil
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := decodeMessage(nil); err == nil {
		t.Error("empty datagram should fail")
	}
	if _, err := decodeMessage([]byte{0xFF, 0x00}); err == nil {
		t.Error("unknown kind should fail")
	}
	// Truncated data message.
	m := &message{Kind: kindData, From: "a", ViewID: 1, Data: dataMsg{Seq: 1, Sender: "b", SenderSeq: 1, Payload: []byte("payload")}}
	b := m.encode()
	if _, err := decodeMessage(b[:len(b)-3]); err == nil {
		t.Error("truncated datagram should fail")
	}
	// Trailing junk.
	if _, err := decodeMessage(append(m.encode(), 0x00)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// Property: data messages with arbitrary payloads and IDs round-trip.
func TestQuickWireData(t *testing.T) {
	f := func(seq, sseq uint64, sender string, payload []byte, viewID uint64) bool {
		m := &message{
			Kind: kindData, From: "x", ViewID: viewID,
			Data: dataMsg{Seq: seq, Sender: MemberID(sender), SenderSeq: sseq, Payload: payload},
		}
		got, err := decodeMessage(m.encode())
		if err != nil {
			return false
		}
		return got.Data.Seq == seq && got.Data.SenderSeq == sseq &&
			got.Data.Sender == MemberID(sender) && bytes.Equal(got.Data.Payload, payload) &&
			got.ViewID == viewID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding random bytes never panics.
func TestQuickWireGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if len(b) > 0 {
			b[0] = byte(rng.Intn(16)) // bias toward valid kinds
		}
		_, _ = decodeMessage(b) // must not panic
	}
}

func TestViewHelpers(t *testing.T) {
	v := View{ID: 3, Members: []MemberID{"a", "b", "c"}, Primary: true}
	if v.Sequencer() != "a" {
		t.Errorf("Sequencer = %q", v.Sequencer())
	}
	if !v.Includes("b") || v.Includes("z") {
		t.Error("Includes wrong")
	}
	empty := View{}
	if empty.Sequencer() != "" {
		t.Error("empty view sequencer should be empty")
	}
}
