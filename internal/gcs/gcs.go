// Package gcs implements the process group communication system that
// JOSHUA replicates over: reliable, totally ordered message delivery
// with fault-tolerant group membership, in the tradition of Transis.
//
// The paper's requirements (Section 3) are:
//
//   - total order: all state-change messages are delivered to all
//     active services in the same order;
//   - reliable delivery: no message delivered at one surviving member
//     is missing at another;
//   - virtual synchrony: membership changes (join, leave, failure) are
//     delivered as view events totally ordered with respect to the
//     message stream, and all members entering a new view have
//     delivered the same set of messages in the old view;
//   - state transfer: a joining member receives a snapshot of the
//     application state consistent with the delivery stream.
//
// The implementation is a per-view fixed-sequencer protocol: the
// lowest member ID of each view sequences messages, receivers deliver
// in sequence order with NACK-based retransmission, and an
// acknowledgment-driven stability watermark garbage-collects the
// retransmission buffer. Membership changes run a coordinator-driven
// flush that reconciles every survivor's unstable messages before the
// next view is installed (see flush.go).
//
// Failure model: fail-stop, as the paper assumes. Under network
// partitions, the PartitionPolicy selects between the paper's
// fail-stop behaviour (every surviving fragment continues — correct
// when failures really are crashes) and a majority rule that keeps at
// most one primary component (safe under real partitions, at the cost
// of availability in minority fragments).
package gcs

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"joshua/internal/codec"
	"joshua/internal/transport"
)

// MemberID uniquely names a group member. The ordering of member IDs
// is load-bearing: the lowest ID in a view acts as sequencer and view-
// change coordinator.
type MemberID string

// View is one group membership epoch.
type View struct {
	// ID increases monotonically at each member. Views of different
	// partition components may reuse numbers; (ID, Members) is unique
	// in practice.
	ID uint64
	// Members is sorted ascending.
	Members []MemberID
	// Primary reports whether this component may make progress under
	// the configured PartitionPolicy. JOSHUA only executes commands
	// in a primary view.
	Primary bool
}

// Sequencer returns the member that orders messages in this view.
func (v View) Sequencer() MemberID {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Includes reports whether m is a member of the view.
func (v View) Includes(m MemberID) bool {
	for _, x := range v.Members {
		if x == m {
			return true
		}
	}
	return false
}

func (v View) String() string {
	return fmt.Sprintf("view %d %v primary=%v", v.ID, v.Members, v.Primary)
}

// PartitionPolicy selects which components stay primary after a
// membership change.
type PartitionPolicy int

const (
	// FailStop treats every membership loss as a crash: any surviving
	// fragment of a primary view remains primary. This matches the
	// paper's fail-stop assumption ("continuous availability as long
	// as one head node survives") but permits split-brain under real
	// network partitions.
	FailStop PartitionPolicy = iota
	// Majority keeps a component primary only while it retains a
	// strict majority of the previous primary view, so at most one
	// primary component exists at any time.
	Majority
)

// Event is the stream the application consumes: deliveries, view
// changes, snapshot requests, and state transfers arrive in a single
// totally ordered sequence per member.
type Event interface{ event() }

// DeliverEvent carries one totally ordered application message.
type DeliverEvent struct {
	ViewID    uint64
	Seq       uint64 // global order within the view, starting at 1
	Sender    MemberID
	SenderSeq uint64 // the sender's FIFO counter
	Payload   []byte
}

// ViewEvent announces an installed view. The application observes it
// after every delivery of the previous view and before any delivery of
// the new one.
type ViewEvent struct {
	View View
}

// SnapshotRequestEvent asks the application for a state snapshot to
// transfer to a joining member. The application MUST call Reply
// exactly once (an empty snapshot is fine); the join is aborted after
// a timeout otherwise. The snapshot must reflect exactly the events
// delivered before this one.
type SnapshotRequestEvent struct {
	Reply func(state []byte)
	// Since is the minimum state version (Config.StateSince) advertised
	// by the joiners this snapshot is for. A nonzero value invites the
	// application to reply with an incremental transfer covering only
	// what came after; the value is opaque to this layer.
	Since uint64
}

// StateTransferEvent delivers the application snapshot to a joining
// member. It precedes the joiner's first ViewEvent.
type StateTransferEvent struct {
	State []byte
}

func (DeliverEvent) event()         {}
func (ViewEvent) event()            {}
func (SnapshotRequestEvent) event() {}
func (StateTransferEvent) event()   {}

// Config parameterizes a Process.
type Config struct {
	// Self is this process's member ID. Required.
	Self MemberID
	// Endpoint is the transport attachment. Required; the Process
	// owns it and closes it on Close.
	Endpoint transport.Endpoint
	// Peers maps every potential member (including Self) to its
	// transport address. Required.
	Peers map[MemberID]transport.Addr

	// InitialMembers, when non-empty, statically bootstraps the group:
	// the process installs a first primary view with exactly these
	// members. Every listed process must be configured identically.
	// When empty, Bootstrap selects between founding a singleton
	// group and joining an existing one via Peers.
	InitialMembers []MemberID
	// Bootstrap makes the process found a new singleton group instead
	// of joining. Exactly one process of a dynamically formed group
	// sets it.
	Bootstrap bool

	// PartitionPolicy defaults to FailStop (the paper's model).
	PartitionPolicy PartitionPolicy

	// StateSince is this process's locally recovered application state
	// version, advertised in join requests so the group can serve an
	// incremental state transfer. Zero (no local state) requests a full
	// transfer. Opaque to this layer.
	StateSince uint64

	// TransferChunk bounds the application-state bytes carried by one
	// state-transfer frame; larger snapshots are split and reassembled
	// at the joiner. Default 256 KiB.
	TransferChunk int

	// Heartbeat is the failure-detector probe interval.
	// Default 25ms.
	Heartbeat time.Duration
	// FailTimeout is how long a member may be silent before it is
	// suspected. Default 8×Heartbeat.
	FailTimeout time.Duration
	// ResendInterval is how long a sender waits for its own message
	// to come back sequenced before retransmitting the request, and
	// how long a receiver waits on a sequence gap before NACKing.
	// Default 4×Heartbeat.
	ResendInterval time.Duration
	// FlushTimeout bounds one view-change attempt. Default
	// 10×Heartbeat.
	FlushTimeout time.Duration
	// SnapshotTimeout bounds the application's snapshot reply during
	// a join. Default 5s.
	SnapshotTimeout time.Duration
	// JoinInterval is how often a joining process re-solicits
	// admission. Default 8×Heartbeat.
	JoinInterval time.Duration

	// Window bounds the sender's outstanding (not yet self-delivered)
	// broadcasts; Broadcast blocks when it is full. Default 256.
	Window int

	// MaxBatch bounds how many sequenced messages the sequencer packs
	// into one BATCH frame, and how many queued ordering requests a
	// sender packs into one REQBATCH frame. Messages available within
	// the same event-loop round coalesce up to this bound, amortising
	// the per-frame cost (encode, send, ack) across a burst; an
	// isolated message still goes out immediately in its own frame, so
	// batching adds no latency. 1 disables batching — every message
	// travels alone, the Transis-faithful configuration. Default 64.
	MaxBatch int
	// AckDelay shapes receipt-acknowledgment coalescing under
	// SafeDelivery. 0 (the default) sends at most one ack per
	// event-loop round, so a burst of sequenced messages arriving
	// together is acknowledged once. A positive value additionally
	// holds the ack up to that long to merge acks across rounds
	// (throughput over latency). A negative value acknowledges every
	// message immediately, as the original per-message protocol did.
	AckDelay time.Duration

	// SafeDelivery delays delivery of each message until every view
	// member has acknowledged receiving it — the "safe" delivery
	// guarantee of extended virtual synchrony (Transis/Totem SAFE
	// messages). It closes the amnesia window where one member
	// delivers (and acts on) a message that dies with it, at the cost
	// of an extra acknowledgment round per message. Off by default
	// (agreed delivery), matching common Transis usage.
	SafeDelivery bool
	// LeaseDuration is the wall-clock length of the read leases the
	// sequencer grants to view members (piggybacked on heartbeat and
	// BATCH frames). A member holding a live lease may serve
	// linearizable reads locally without a broadcast; see
	// LeasedReadOK. Grants are issued only while SafeDelivery is on
	// (an acked message is then guaranteed received at every lease
	// holder) and only in a primary view; they cease the moment a
	// flush begins, and holders revoke synchronously when they enter
	// a flush or install a view. Zero selects the default,
	// FailTimeout/2; values above FailTimeout are clamped to it (a
	// suspected member's lease must not outlive failure detection);
	// negative disables leasing.
	LeaseDuration time.Duration

	// LoopbackSelfDelivery routes the sequencer's own sequenced
	// messages through its transport endpoint instead of the direct
	// in-process path. Transis-faithful: the original JOSHUA stack
	// crossed a local daemon socket even for same-node delivery, which
	// is where the paper's 37% single-head latency overhead lives.
	// Benchmarks enable it; it changes timing only, not semantics.
	LoopbackSelfDelivery bool

	// Logger receives protocol diagnostics. Nil disables logging.
	Logger *log.Logger
}

func (c *Config) fillDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 25 * time.Millisecond
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 8 * c.Heartbeat
	}
	if c.ResendInterval <= 0 {
		c.ResendInterval = 4 * c.Heartbeat
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = 10 * c.Heartbeat
	}
	if c.SnapshotTimeout <= 0 {
		c.SnapshotTimeout = 5 * time.Second
	}
	if c.JoinInterval <= 0 {
		c.JoinInterval = 8 * c.Heartbeat
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.TransferChunk <= 0 {
		c.TransferChunk = 256 << 10
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = c.FailTimeout / 2
	}
	if c.LeaseDuration > c.FailTimeout {
		c.LeaseDuration = c.FailTimeout
	}
}

// maxBatchBytes caps the payload bytes coalesced into one BATCH or
// REQBATCH frame, keeping a batch of large messages well under the
// codec frame limit. A single oversized message still goes out alone.
const maxBatchBytes = 1 << 20

// Process states.
type status int

const (
	statusJoining status = iota
	statusNormal
	statusFlushing
	statusClosed
)

// pendingMsg is one of our own broadcasts not yet delivered back to us.
type pendingMsg struct {
	senderSeq uint64
	payload   []byte
	lastSent  time.Time
}

// Errors returned by the public API.
var (
	ErrClosed = errors.New("gcs: process closed")
)

// Process is one group member. Create with Start; consume Events; send
// with Broadcast.
type Process struct {
	cfg Config
	ep  transport.Endpoint

	actions chan func() // API requests executed on the loop goroutine
	done    chan struct{}
	stopped sync.Once
	events  *eventQueue
	window  chan struct{}

	viewMu   sync.Mutex
	viewSnap View  // latest installed view, for the View() accessor
	stats    Stats // guarded by viewMu

	// Read-lease state, written by the loop goroutine and read by
	// application read paths (LeaseValid/LeasedReadOK):
	// leaseExp is the UnixNano expiry of the current lease (0 = none);
	// caughtUp is republished every event-loop round and reports
	// whether this member has delivered every sequence it knows was
	// assigned in the current view; delivCount counts DeliverEvents
	// pushed, so the application can tell when it has consumed them
	// all.
	leaseExp   atomic.Int64
	caughtUp   atomic.Bool
	delivCount atomic.Uint64

	// --- everything below is owned by the run loop goroutine ---

	st   status
	view View

	// failure detection
	lastHeard map[MemberID]time.Time
	suspected map[MemberID]bool
	joiners   map[MemberID]bool
	leavers   map[MemberID]bool

	// sender side
	senderSeq uint64
	pending   []pendingMsg

	// total order (per current view)
	nextSeq     uint64              // sequencer: next global seq to assign
	nextDeliver uint64              // next global seq to deliver
	stable      uint64              // GC watermark
	ordered     map[uint64]*dataMsg // received sequenced messages > stable
	lastSeqd    map[MemberID]uint64 // sequencer: highest SenderSeq ordered per member
	reqSeq      map[MemberID]map[uint64]uint64
	acked       map[MemberID]uint64 // sequencer: cumulative acks
	delivered   map[MemberID]uint64 // highest SenderSeq delivered per member
	gapSince    time.Time           // when the current delivery gap appeared
	// Safe delivery (when enabled): members report their highest
	// contiguously received sequence to the sequencer, which
	// aggregates them into a safe watermark and broadcasts it;
	// delivery never passes the watermark. safeUpTo is the local
	// watermark; recvAcked is the sequencer's per-member accounting.
	safeUpTo  uint64
	recvAcked map[MemberID]uint64
	lastReAck time.Time
	// tailSeq is the highest sequence known to have been assigned in
	// this view (from received DATA and heartbeat advertisements); it
	// lets a member that missed the tail of the stream NACK it.
	tailSeq uint64

	// Batching (see flushRound): output accumulated during one
	// event-loop round and emitted as coalesced frames at its end.
	outData []dataMsg // sequencer: sequenced but not yet multicast
	reqOut  []dataMsg // sender: ordering requests not yet sent
	// Ack coalescing: ackPending marks a receipt ack owed to the
	// sequencer; it is satisfied once per round by flushAck, or
	// piggybacked on an outgoing REQBATCH. ackSince anchors the
	// AckDelay window; ackArmed tracks whether ackTimer is set.
	ackPending bool
	ackSince   time.Time
	ackArmed   bool
	ackTimer   *time.Timer
	// safeDirty marks a safe-watermark announcement owed to the view
	// (sequencer); flushSafe emits it once per round unless a BATCH
	// frame already carried it.
	safeDirty bool

	// flush state (see flush.go)
	fl flushState
	// leaseFence is when every read lease granted before this view
	// change provably expires (grants cease at flush entry); a
	// Majority-policy coordinator excluding members waits it out
	// before installing the new view (leaseBarrierWait).
	leaseFence time.Time
	// flushMiss counts consecutive flush attempts a member failed to
	// report a flush state for (coordinator bookkeeping); a member is
	// suspected only after two consecutive misses, so one slow round
	// does not get a healthy member excluded.
	flushMiss map[MemberID]int
	// lastNewView caches the most recent NEWVIEW this process
	// disseminated as coordinator, for retransmission to members
	// whose copy was lost.
	lastNewView *message

	// joiner state. The snapshot arrives as ChunkCnt chunks (possibly
	// out of order, possibly re-sent across flush attempts); snapGot
	// flips only once every chunk of one NewViewID is in.
	snapGot     bool
	snapViewID  uint64
	snapTable   map[MemberID]uint64
	snapApp     []byte
	snapChunks  [][]byte
	snapHave    int
	lastJoinReq time.Time

	// joinSince records each joiner's advertised recovered state
	// version (kindJoin.Since) until it is admitted.
	joinSince map[MemberID]uint64
}

// Start creates and runs a Process. It returns immediately; the first
// ViewEvent signals group formation (for bootstrap and static modes)
// or admission (for joiners).
func Start(cfg Config) (*Process, error) {
	if cfg.Self == "" {
		return nil, errors.New("gcs: Config.Self required")
	}
	if cfg.Endpoint == nil {
		return nil, errors.New("gcs: Config.Endpoint required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("gcs: Peers must include Self (%q)", cfg.Self)
	}
	cfg.fillDefaults()

	p := &Process{
		cfg:       cfg,
		ep:        cfg.Endpoint,
		actions:   make(chan func(), 64),
		done:      make(chan struct{}),
		events:    newEventQueue(),
		window:    make(chan struct{}, cfg.Window),
		lastHeard: make(map[MemberID]time.Time),
		suspected: make(map[MemberID]bool),
		joiners:   make(map[MemberID]bool),
		joinSince: make(map[MemberID]uint64),
		leavers:   make(map[MemberID]bool),
		ordered:   make(map[uint64]*dataMsg),
		lastSeqd:  make(map[MemberID]uint64),
		reqSeq:    make(map[MemberID]map[uint64]uint64),
		acked:     make(map[MemberID]uint64),
		delivered: make(map[MemberID]uint64),
		recvAcked: make(map[MemberID]uint64),
		flushMiss: make(map[MemberID]int),
	}

	switch {
	case len(cfg.InitialMembers) > 0:
		members := append([]MemberID(nil), cfg.InitialMembers...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if !(View{Members: members}).Includes(cfg.Self) {
			return nil, fmt.Errorf("gcs: InitialMembers must include Self (%q)", cfg.Self)
		}
		p.installView(View{ID: 1, Members: members, Primary: true})
		p.st = statusNormal
		p.events.push(ViewEvent{View: p.View()})
	case cfg.Bootstrap:
		p.installView(View{ID: 1, Members: []MemberID{cfg.Self}, Primary: true})
		p.st = statusNormal
		p.events.push(ViewEvent{View: p.View()})
	default:
		p.st = statusJoining
	}

	go p.run()
	return p, nil
}

// Events returns the ordered event stream. The channel is closed when
// the process stops. The internal queue is unbounded, so a slow
// consumer never stalls the protocol, but it must eventually drain.
func (p *Process) Events() <-chan Event { return p.events.ch }

// Self returns this process's member ID.
func (p *Process) Self() MemberID { return p.cfg.Self }

// View returns the most recently installed view.
func (p *Process) View() View {
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	v := p.viewSnap
	v.Members = append([]MemberID(nil), v.Members...)
	return v
}

// Stats counts protocol activity since the process started.
type Stats struct {
	Broadcasts       uint64 // application messages submitted
	Delivered        uint64 // application messages delivered
	Sequenced        uint64 // global sequence numbers assigned (sequencer role)
	Retransmits      uint64 // DATA retransmissions served (NACKs, duplicate requests)
	NacksSent        uint64 // retransmission requests issued
	Views            uint64 // views installed
	FlushAttempts    uint64 // view-change attempts coordinated
	BatchesSent      uint64 // multi-message BATCH/REQBATCH frames sent
	MsgsPerBatchMax  uint64 // most messages coalesced into a single frame
	AcksCoalesced    uint64 // receipt acks merged into another ack or frame
	SendQueueDrops   uint64 // datagrams the transport reported dropped on send
	LeaseGrants      uint64 // read-lease grant rounds issued (sequencer role)
	LeaseRevocations uint64 // read leases revoked (flush entry, view change)
}

// Stats returns a snapshot of the protocol counters.
func (p *Process) Stats() Stats {
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	return p.stats
}

// Buffered reports how many sequenced messages are currently held in
// the retransmission buffer (delivered-but-unstable plus undelivered).
// Bounded operation depends on the stability watermark draining it;
// tests assert that. Returns 0 after Close.
func (p *Process) Buffered() int {
	reply := make(chan int, 1)
	if err := p.do(func() { reply <- len(p.ordered) }); err != nil {
		return 0
	}
	select {
	case n := <-reply:
		return n
	case <-p.done:
		return 0
	}
}

// bump mutates the counters; called from the loop goroutine only.
func (p *Process) bumpStat(f func(*Stats)) {
	p.viewMu.Lock()
	f(&p.stats)
	p.viewMu.Unlock()
}

// leaseGrant returns the lease duration to piggyback on an outgoing
// heartbeat or BATCH frame, or zero when no grant may be issued.
// Grants require safe delivery: it guarantees that any message acked
// to a client was received by every lease holder first, which is what
// makes a caught-up holder's local read linearizable. Grants stop the
// moment this process leaves normal status (flush entry), so the
// remaining lease window bounds how long any member may keep serving
// leased reads across a membership change. Loop goroutine only.
func (p *Process) leaseGrant() time.Duration {
	if p.cfg.LeaseDuration <= 0 || !p.cfg.SafeDelivery {
		return 0
	}
	if p.st != statusNormal || !p.view.Primary || p.view.Sequencer() != p.cfg.Self {
		return 0
	}
	return p.cfg.LeaseDuration
}

// renewLease extends the local lease after receiving a grant. Only
// 3/4 of the granted window is honored locally — the margin absorbs
// frame transit delay and modest clock-rate drift between grantor and
// grantee. The expiry never moves backwards. Loop goroutine only.
func (p *Process) renewLease(dur time.Duration) {
	exp := time.Now().Add(dur - dur/4).UnixNano()
	if exp > p.leaseExp.Load() {
		p.leaseExp.Store(exp)
	}
}

// revokeLease drops the local lease immediately. Called on flush
// entry and view installation so no leased read is served once a
// membership change is underway. Loop goroutine only.
func (p *Process) revokeLease() {
	if p.leaseExp.Swap(0) != 0 {
		p.bumpStat(func(st *Stats) { st.LeaseRevocations++ })
	}
}

// LeaseValid reports whether this member holds an unexpired read
// lease from the current sequencer. Safe from any goroutine.
func (p *Process) LeaseValid() bool {
	exp := p.leaseExp.Load()
	return exp != 0 && time.Now().UnixNano() < exp
}

// LeasedReadOK reports whether a linearizable local read may be
// served right now: the lease is live and this member has delivered
// every sequence it knows was assigned. The second condition matters
// because safe delivery guarantees an acked message was *received*
// everywhere, not yet delivered; a holder with a received-but-
// undelivered suffix must fall back to the broadcast path. The
// application must additionally have consumed every pushed delivery
// (see DeliveredCount) before its state is current. Safe from any
// goroutine.
func (p *Process) LeasedReadOK() bool {
	return p.caughtUp.Load() && p.LeaseValid()
}

// DeliveredCount returns the cumulative number of DeliverEvents
// pushed to the event stream. Safe from any goroutine.
func (p *Process) DeliveredCount() uint64 { return p.delivCount.Load() }

// Broadcast submits a payload for totally ordered delivery to the
// group (including this member). It blocks while the send window is
// full and returns ErrClosed after Close. Delivery is guaranteed as
// long as this process stays alive and in the group: the message is
// retransmitted across view changes until self-delivered.
func (p *Process) Broadcast(payload []byte) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case p.window <- struct{}{}:
	case <-p.done:
		return ErrClosed
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return p.do(func() { p.startBroadcast(buf) })
}

// Leave announces a voluntary departure and stops the process. Per the
// paper, leaving "is actually handled as a forced failure": the member
// tells the group to exclude it immediately and shuts down without
// waiting for the resulting view.
func (p *Process) Leave() {
	sent := make(chan struct{})
	err := p.do(func() {
		m := &message{Kind: kindLeave, From: p.cfg.Self, ViewID: p.view.ID}
		p.sendToMembers(m)
		close(sent)
	})
	if err == nil {
		select {
		case <-sent:
		case <-p.done:
		case <-time.After(time.Second):
		}
	}
	p.Close()
}

// Close stops the process immediately (a local crash: no goodbye is
// sent; peers detect the failure). Safe to call multiple times.
func (p *Process) Close() {
	p.stopped.Do(func() { close(p.done) })
}

// do runs fn on the loop goroutine, returning ErrClosed if the process
// has stopped.
func (p *Process) do(fn func()) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case p.actions <- fn:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (p *Process) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf("[gcs %s] "+format, append([]any{p.cfg.Self}, args...)...)
	}
}

// run is the single event-loop goroutine that owns all protocol state.
func (p *Process) run() {
	defer func() {
		p.st = statusClosed
		p.leaseExp.Store(0)
		p.caughtUp.Store(false)
		p.ep.Close()
		p.events.close()
	}()

	tick := time.NewTicker(p.cfg.Heartbeat)
	defer tick.Stop()

	p.ackTimer = time.NewTimer(time.Hour)
	if !p.ackTimer.Stop() {
		<-p.ackTimer.C
	}
	defer p.ackTimer.Stop()

	now := time.Now()
	for m := range p.cfg.Peers {
		p.lastHeard[m] = now // grace period at startup
	}

	for {
		select {
		case <-p.done:
			return
		case fn := <-p.actions:
			fn()
		case msg, ok := <-p.ep.Recv():
			if !ok {
				return
			}
			p.handleDatagram(msg)
		case <-tick.C:
			p.onTick()
		case <-p.ackTimer.C:
			p.ackArmed = false // flushRound sends the now-due ack
		}
		p.drainInputs()
		p.flushRound()
	}
}

// drainInputs opportunistically processes whatever input is already
// queued before the round's output goes out, so a burst of commands
// or datagrams coalesces into batched frames instead of paying one
// frame each. The bound keeps the ticker (failure detector,
// retransmission) responsive under sustained load.
func (p *Process) drainInputs() {
	for i := 0; i < 4*p.cfg.MaxBatch; i++ {
		select {
		case <-p.done:
			return
		case fn := <-p.actions:
			fn()
		case msg, ok := <-p.ep.Recv():
			if !ok {
				return
			}
			p.handleDatagram(msg)
		default:
			return
		}
	}
}

// flushRound emits the output accumulated during one event-loop
// round: sequenced DATA batches, queued ordering requests, the safe
// watermark, and the receipt ack. Deferring the sends to this single
// point is what turns the opportunistic input drain into wire-level
// batching and ack coalescing.
func (p *Process) flushRound() {
	if p.st == statusClosed {
		p.caughtUp.Store(false)
		return
	}
	p.flushOutData()
	p.flushReqOut()
	p.flushSafe()
	p.flushAck()
	// Republish the leased-read catch-up gate: delivered everything we
	// know was assigned in this view (tailSeq covers every received
	// sequence and every heartbeat advertisement).
	p.caughtUp.Store(p.st == statusNormal && p.nextDeliver > p.tailSeq)
}

// flushOutData multicasts the messages sequenced this round, packing
// up to MaxBatch of them into each BATCH frame. A lone message uses
// the plain DATA frame, identical to the unbatched protocol.
func (p *Process) flushOutData() {
	for len(p.outData) > 0 {
		n, bytes := 0, 0
		for n < len(p.outData) && n < p.cfg.MaxBatch {
			sz := len(p.outData[n].Payload)
			if n > 0 && bytes+sz > maxBatchBytes {
				break
			}
			bytes += sz
			n++
		}
		var m *message
		if n == 1 {
			m = &message{Kind: kindData, From: p.cfg.Self, ViewID: p.view.ID, Data: p.outData[0]}
		} else {
			m = &message{Kind: kindBatch, From: p.cfg.Self, ViewID: p.view.ID, Msgs: p.outData[:n]}
			if p.cfg.SafeDelivery {
				// Piggyback the safe watermark; the separate SAFE
				// frame this round becomes redundant.
				m.Delivered = p.safeUpTo
				p.safeDirty = false
			}
			// Piggyback a lease grant so holders under sustained
			// write load renew from the data stream itself.
			m.LeaseDur = p.leaseGrant()
			p.bumpStat(func(st *Stats) {
				st.BatchesSent++
				if uint64(n) > st.MsgsPerBatchMax {
					st.MsgsPerBatchMax = uint64(n)
				}
			})
		}
		p.sendToMembers(m)
		if p.cfg.LoopbackSelfDelivery {
			p.sendTo(p.cfg.Self, m)
		}
		p.outData = p.outData[n:]
	}
	p.outData = nil
}

// flushReqOut sends the ordering requests queued this round to the
// sequencer, packing up to MaxBatch into each REQBATCH frame with the
// current delivery/receipt watermarks piggybacked (which also
// satisfies any pending receipt ack). Requests queued by the time a
// view change interrupted the round are discarded: adoptView
// retransmits all pending messages once the new view is installed.
func (p *Process) flushReqOut() {
	if len(p.reqOut) == 0 {
		return
	}
	if p.st != statusNormal || p.view.Sequencer() == p.cfg.Self {
		p.reqOut = nil
		return
	}
	seqr := p.view.Sequencer()
	for len(p.reqOut) > 0 {
		n, bytes := 0, 0
		for n < len(p.reqOut) && n < p.cfg.MaxBatch {
			sz := len(p.reqOut[n].Payload)
			if n > 0 && bytes+sz > maxBatchBytes {
				break
			}
			bytes += sz
			n++
		}
		var m *message
		if n == 1 && !p.ackPending {
			m = &message{Kind: kindReq, From: p.cfg.Self, ViewID: p.view.ID, Data: p.reqOut[0]}
		} else {
			m = &message{
				Kind:      kindReqBatch,
				From:      p.cfg.Self,
				ViewID:    p.view.ID,
				Msgs:      p.reqOut[:n],
				Delivered: p.nextDeliver - 1,
				Received:  p.contiguousReceived(),
			}
			if p.ackPending {
				p.ackPending = false
				p.bumpStat(func(st *Stats) { st.AcksCoalesced++ })
			}
			if n > 1 {
				p.bumpStat(func(st *Stats) {
					st.BatchesSent++
					if uint64(n) > st.MsgsPerBatchMax {
						st.MsgsPerBatchMax = uint64(n)
					}
				})
			}
		}
		p.sendTo(seqr, m)
		p.reqOut = p.reqOut[n:]
	}
	p.reqOut = nil
}

// flushSafe announces the safe watermark once per round when it moved
// (or the periodic re-announce is due) and no BATCH frame carried it.
func (p *Process) flushSafe() {
	if !p.safeDirty {
		return
	}
	p.safeDirty = false
	p.sendToMembers(&message{Kind: kindSafe, From: p.cfg.Self, ViewID: p.view.ID, Delivered: p.safeUpTo})
}

// flushAck sends the coalesced receipt ack owed to the sequencer, or
// arms the delay timer when AckDelay postpones it past this round.
func (p *Process) flushAck() {
	if !p.ackPending {
		return
	}
	if p.cfg.AckDelay > 0 {
		if wait := p.cfg.AckDelay - time.Since(p.ackSince); wait > 0 {
			if !p.ackArmed {
				p.ackArmed = true
				p.ackTimer.Reset(wait)
			}
			return
		}
	}
	p.sendAckNow()
}

// handleDatagram decodes and dispatches one incoming datagram.
func (p *Process) handleDatagram(dg transport.Message) {
	m, err := decodeMessage(dg.Payload)
	if err != nil {
		p.logf("dropping datagram from %s: %v", dg.From, err)
		return
	}
	if m.From == p.cfg.Self && m.Kind != kindData && m.Kind != kindBatch {
		return // our own echo; only loopback self-delivery DATA is real
	}
	p.lastHeard[m.From] = time.Now()

	switch m.Kind {
	case kindHeartbeat:
		if m.ViewID == p.view.ID {
			if m.Delivered > p.tailSeq {
				p.tailSeq = m.Delivered
			}
			if m.LeaseDur > 0 && p.st == statusNormal && m.From == p.view.Sequencer() {
				p.renewLease(m.LeaseDur)
			}
		}
	case kindData:
		p.onData(m)
	case kindReq:
		p.onReq(m)
	case kindNack:
		p.onNack(m)
	case kindAck:
		p.onAck(m)
	case kindStable:
		p.onStable(m)
	case kindJoin:
		p.onJoin(m)
	case kindLeave:
		p.onLeave(m)
	case kindSuspect:
		p.onSuspect(m)
	case kindPropose:
		p.onPropose(m)
	case kindFlushState:
		p.onFlushState(m)
	case kindNewView:
		p.onNewView(m)
	case kindStateSnap:
		p.onStateSnap(m)
	case kindSafe:
		p.onSafe(m)
	case kindBatch:
		p.onBatch(m)
	case kindReqBatch:
		p.onReqBatch(m)
	}
}

// onTick drives heartbeats, the failure detector, retransmission, and
// flush/join timeouts.
func (p *Process) onTick() {
	now := time.Now()
	switch p.st {
	case statusJoining:
		if now.Sub(p.lastJoinReq) >= p.cfg.JoinInterval {
			p.lastJoinReq = now
			p.multicast(sortedKeys(p.cfg.Peers), &message{Kind: kindJoin, From: p.cfg.Self, Since: p.cfg.StateSince})
		}
		return
	case statusClosed:
		return
	}

	// Heartbeats to all current members, advertising the highest
	// sequence we know was assigned so peers can detect a missed
	// tail.
	hb := &message{Kind: kindHeartbeat, From: p.cfg.Self, ViewID: p.view.ID, Delivered: p.tailSeq}
	if p.view.Sequencer() == p.cfg.Self && p.nextSeq > hb.Delivered {
		hb.Delivered = p.nextSeq
	}
	if dur := p.leaseGrant(); dur > 0 {
		hb.LeaseDur = dur
		p.renewLease(dur) // the sequencer's own lease rides its grant
		p.bumpStat(func(st *Stats) { st.LeaseGrants++ })
	}
	p.sendToMembers(hb)

	// Failure detection.
	var newlySuspected []MemberID
	for _, m := range p.view.Members {
		if m == p.cfg.Self || p.suspected[m] {
			continue
		}
		if now.Sub(p.lastHeard[m]) > p.cfg.FailTimeout {
			p.suspected[m] = true
			newlySuspected = append(newlySuspected, m)
		}
	}
	if len(newlySuspected) > 0 {
		p.logf("suspecting %v", newlySuspected)
		p.shareSuspicions()
	}

	switch p.st {
	case statusNormal:
		p.resendPending(now)
		p.nackGaps(now)
		p.reAckStalled(now)
		p.sendAck()
		p.maybeStartFlush()
	case statusFlushing:
		p.flushTick(now)
	}
}

// startBroadcast assigns the next sender sequence number and transmits.
// Runs on the loop goroutine.
func (p *Process) startBroadcast(payload []byte) {
	p.bumpStat(func(st *Stats) { st.Broadcasts++ })
	p.senderSeq++
	pm := pendingMsg{senderSeq: p.senderSeq, payload: payload}
	p.pending = append(p.pending, pm)
	if p.st == statusNormal {
		p.transmitPending(&p.pending[len(p.pending)-1])
	}
	// While flushing or joining, the message stays queued; it is
	// (re)transmitted when a view is installed.
}

// transmitPending sends one of our queued messages: self-sequence when
// we are the sequencer, otherwise request ordering from it.
func (p *Process) transmitPending(pm *pendingMsg) {
	pm.lastSent = time.Now()
	if p.view.Sequencer() == p.cfg.Self {
		p.sequence(dataMsg{Sender: p.cfg.Self, SenderSeq: pm.senderSeq, Payload: pm.payload})
		return
	}
	d := dataMsg{Sender: p.cfg.Self, SenderSeq: pm.senderSeq, Payload: pm.payload}
	if p.cfg.MaxBatch > 1 {
		// Queue for the round's REQBATCH; flushReqOut sends it.
		p.reqOut = append(p.reqOut, d)
		return
	}
	m := &message{Kind: kindReq, From: p.cfg.Self, ViewID: p.view.ID, Data: d}
	p.sendTo(p.view.Sequencer(), m)
}

// sequence assigns the next global sequence number (sequencer only)
// and broadcasts the resulting DATA message to the whole view.
func (p *Process) sequence(d dataMsg) {
	last := p.lastSeqd[d.Sender]
	if d.SenderSeq <= last {
		// Duplicate request: the DATA we sent may have been lost on
		// the way back to the sender. Retransmit it if still buffered.
		if seqs, ok := p.reqSeq[d.Sender]; ok {
			if gseq, ok := seqs[d.SenderSeq]; ok {
				if dm, ok := p.ordered[gseq]; ok {
					p.bumpStat(func(st *Stats) { st.Retransmits++ })
					p.sendTo(d.Sender, &message{Kind: kindData, From: p.cfg.Self, ViewID: p.view.ID, Data: *dm})
				}
			}
		}
		return
	}
	if d.SenderSeq != last+1 {
		// A hole in the sender's FIFO stream: with per-flow FIFO
		// transports this only happens across view changes, where the
		// sender retries in order; drop and let retransmission fix it.
		return
	}
	p.nextSeq++
	d.Seq = p.nextSeq
	p.bumpStat(func(st *Stats) { st.Sequenced++ })
	p.lastSeqd[d.Sender] = d.SenderSeq
	if p.reqSeq[d.Sender] == nil {
		p.reqSeq[d.Sender] = make(map[uint64]uint64)
	}
	p.reqSeq[d.Sender][d.SenderSeq] = d.Seq

	if p.cfg.MaxBatch > 1 {
		// Defer the multicast to flushOutData so messages sequenced in
		// the same round share a frame. Local acceptance is immediate
		// (loopback self-delivery instead rides the batch sent to
		// self).
		p.outData = append(p.outData, d)
		if !p.cfg.LoopbackSelfDelivery {
			dd := d
			p.acceptData(&dd)
		}
		return
	}
	m := &message{Kind: kindData, From: p.cfg.Self, ViewID: p.view.ID, Data: d}
	p.sendToMembers(m)
	if p.cfg.LoopbackSelfDelivery {
		// Transis-faithful path: our own message re-enters through
		// the endpoint, paying the local IPC hop.
		p.sendTo(p.cfg.Self, m)
		return
	}
	p.acceptData(&d)
}

// onBatch handles a coalesced frame of sequenced messages, plus its
// piggybacked safe watermark.
func (p *Process) onBatch(m *message) {
	if m.ViewID != p.view.ID || p.st == statusJoining {
		return
	}
	for i := range m.Msgs {
		d := m.Msgs[i]
		p.acceptData(&d)
	}
	if p.cfg.SafeDelivery && m.From == p.view.Sequencer() && m.Delivered > p.safeUpTo {
		p.safeUpTo = m.Delivered
		if p.st == statusNormal {
			p.deliverReady()
		}
	}
	if m.LeaseDur > 0 && p.st == statusNormal && m.From == p.view.Sequencer() {
		p.renewLease(m.LeaseDur)
	}
}

// onReqBatch handles a coalesced frame of ordering requests
// (sequencer only). The piggybacked watermarks are applied exactly
// like a standalone ACK.
func (p *Process) onReqBatch(m *message) {
	if m.ViewID != p.view.ID || p.st != statusNormal {
		return
	}
	if p.view.Sequencer() != p.cfg.Self || !p.view.Includes(m.From) {
		return
	}
	if m.Delivered > p.acked[m.From] {
		p.acked[m.From] = m.Delivered
	}
	if m.Received > p.recvAcked[m.From] {
		p.recvAcked[m.From] = m.Received
	}
	for i := range m.Msgs {
		p.sequence(m.Msgs[i])
	}
	p.advanceStability()
	if p.cfg.SafeDelivery {
		p.updateSafeWatermark()
	}
}

// onData handles a sequenced message from the sequencer.
func (p *Process) onData(m *message) {
	if m.ViewID != p.view.ID || p.st == statusJoining {
		return
	}
	d := m.Data
	p.acceptData(&d)
}

// acceptData buffers a sequenced message and, in normal operation,
// delivers any newly contiguous prefix. During a flush delivery is
// frozen: messages are only buffered, and the coordinator's agreed
// final sequence (deliverTo) decides what gets delivered, preserving
// virtual synchrony.
func (p *Process) acceptData(d *dataMsg) {
	if d.Seq <= p.stable {
		return // already delivered everywhere and garbage-collected
	}
	if d.Seq > p.tailSeq {
		p.tailSeq = d.Seq
	}
	if _, ok := p.ordered[d.Seq]; !ok {
		p.ordered[d.Seq] = d
		if p.cfg.SafeDelivery && p.st == statusNormal {
			if p.view.Sequencer() == p.cfg.Self {
				p.updateSafeWatermark()
			} else if p.cfg.AckDelay < 0 {
				p.sendAckNow() // per-message acks, Transis-faithful
			} else {
				p.scheduleAck()
			}
		}
	}
	if p.st == statusNormal {
		p.deliverReady()
	}
}

// contiguousReceived returns the highest sequence up to which this
// member holds (or has delivered) every message.
func (p *Process) contiguousReceived() uint64 {
	r := p.nextDeliver - 1
	for {
		if _, ok := p.ordered[r+1]; !ok {
			return r
		}
		r++
	}
}

// scheduleAck marks a receipt ack owed to the sequencer; flushRound
// satisfies it once per round (or per AckDelay window), either as one
// ACK frame or piggybacked on an outgoing REQBATCH.
func (p *Process) scheduleAck() {
	if p.ackPending {
		p.bumpStat(func(st *Stats) { st.AcksCoalesced++ })
		return
	}
	p.ackPending = true
	p.ackSince = time.Now()
}

// sendAckNow immediately reports receipt progress to the sequencer
// (safe delivery: the sequencer aggregates these into the safe
// watermark). It satisfies any coalesced ack still pending.
func (p *Process) sendAckNow() {
	p.ackPending = false
	m := &message{
		Kind:      kindAck,
		From:      p.cfg.Self,
		ViewID:    p.view.ID,
		Delivered: p.nextDeliver - 1,
		Received:  p.contiguousReceived(),
	}
	p.sendTo(p.view.Sequencer(), m)
}

// updateSafeWatermark recomputes the safe watermark (sequencer only):
// the highest sequence contiguously received by every view member.
// Advancing it unblocks delivery everywhere.
func (p *Process) updateSafeWatermark() {
	w := p.contiguousReceived()
	for _, m := range p.view.Members {
		if m == p.cfg.Self {
			continue
		}
		if p.recvAcked[m] < w {
			w = p.recvAcked[m]
		}
	}
	if w > p.safeUpTo {
		p.safeUpTo = w
		p.broadcastSafe()
		if p.st == statusNormal {
			p.deliverReady()
		}
	}
}

// broadcastSafe schedules a safe-watermark announcement (sequencer
// only); flushSafe emits at most one SAFE frame per round, and an
// outgoing BATCH frame absorbs it entirely.
func (p *Process) broadcastSafe() {
	p.safeDirty = true
}

// onSafe adopts the sequencer's safe watermark.
func (p *Process) onSafe(m *message) {
	if !p.cfg.SafeDelivery || m.ViewID != p.view.ID {
		return
	}
	if m.From != p.view.Sequencer() {
		return
	}
	if m.Delivered > p.safeUpTo {
		p.safeUpTo = m.Delivered
		if p.st == statusNormal {
			p.deliverReady()
		}
	}
}

// deliverReady delivers the contiguous prefix starting at nextDeliver
// (subject to the safe-delivery condition when enabled).
func (p *Process) deliverReady() {
	for {
		d, ok := p.ordered[p.nextDeliver]
		if !ok {
			break
		}
		if p.cfg.SafeDelivery && p.nextDeliver > p.safeUpTo {
			break // await the safe watermark
		}
		p.deliverOne(d)
		p.nextDeliver++
	}
}

// deliverOne emits one DeliverEvent and updates sender bookkeeping.
func (p *Process) deliverOne(d *dataMsg) {
	if d.SenderSeq > p.delivered[d.Sender] {
		p.delivered[d.Sender] = d.SenderSeq
	}
	if d.Sender == p.cfg.Self {
		// Drop from pending and release the window slot.
		for len(p.pending) > 0 && p.pending[0].senderSeq <= d.SenderSeq {
			p.pending = p.pending[1:]
			select {
			case <-p.window:
			default:
			}
		}
	}
	p.bumpStat(func(st *Stats) { st.Delivered++ })
	p.delivCount.Add(1)
	p.events.push(DeliverEvent{
		ViewID:    p.view.ID,
		Seq:       d.Seq,
		Sender:    d.Sender,
		SenderSeq: d.SenderSeq,
		Payload:   d.Payload,
	})
}

// maxOrdered returns the highest buffered sequence and whether a gap
// exists between nextDeliver and it.
func (p *Process) maxOrdered() (uint64, bool) {
	var max uint64
	for s := range p.ordered {
		if s > max {
			max = s
		}
	}
	return max, max >= p.nextDeliver && len(p.ordered) > 0 &&
		p.ordered[p.nextDeliver] == nil
}

// onReq handles an ordering request (sequencer only).
func (p *Process) onReq(m *message) {
	if m.ViewID != p.view.ID || p.st != statusNormal {
		return
	}
	if p.view.Sequencer() != p.cfg.Self {
		return // misdirected; sender will retry after the view change
	}
	if !p.view.Includes(m.From) {
		return
	}
	p.sequence(m.Data)
}

// resendPending retransmits our not-yet-delivered messages.
func (p *Process) resendPending(now time.Time) {
	for i := range p.pending {
		pm := &p.pending[i]
		if now.Sub(pm.lastSent) >= p.cfg.ResendInterval {
			p.transmitPending(pm)
		}
	}
}

// nackGaps requests retransmission when a delivery gap persists: some
// sequence up to the known tail is missing from the buffer.
func (p *Process) nackGaps(now time.Time) {
	var missing []uint64
	for s := p.nextDeliver; s <= p.tailSeq && len(missing) < 64; s++ {
		if _, ok := p.ordered[s]; !ok {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		p.gapSince = time.Time{}
		return
	}
	if p.gapSince.IsZero() {
		p.gapSince = now // grace period before the first NACK
		return
	}
	if now.Sub(p.gapSince) < p.cfg.ResendInterval {
		return
	}
	p.gapSince = now // rate-limit
	p.bumpStat(func(st *Stats) { st.NacksSent++ })
	m := &message{Kind: kindNack, From: p.cfg.Self, ViewID: p.view.ID, Missing: missing}
	p.sendTo(p.view.Sequencer(), m)
}

// reAckStalled retransmits receipt acknowledgments while safe
// delivery is stalled, covering a lost ack or a lost safe watermark
// (the sequencer's periodic broadcastSafe covers the other side).
func (p *Process) reAckStalled(now time.Time) {
	if !p.cfg.SafeDelivery || p.view.Sequencer() == p.cfg.Self {
		return
	}
	if _, ok := p.ordered[p.nextDeliver]; !ok {
		return // gap, not an ack stall; nackGaps handles it
	}
	if now.Sub(p.lastReAck) < p.cfg.ResendInterval {
		return
	}
	p.lastReAck = now
	p.sendAckNow()
}

// onNack retransmits requested messages (sequencer only).
func (p *Process) onNack(m *message) {
	if m.ViewID != p.view.ID || p.view.Sequencer() != p.cfg.Self {
		return
	}
	for _, seq := range m.Missing {
		if d, ok := p.ordered[seq]; ok {
			p.bumpStat(func(st *Stats) { st.Retransmits++ })
			p.sendTo(m.From, &message{Kind: kindData, From: p.cfg.Self, ViewID: p.view.ID, Data: *d})
		}
	}
}

// sendAck reports cumulative delivery progress to the sequencer.
func (p *Process) sendAck() {
	if p.view.Sequencer() == p.cfg.Self {
		p.acked[p.cfg.Self] = p.nextDeliver - 1
		p.advanceStability()
		if p.cfg.SafeDelivery {
			p.updateSafeWatermark()
			// Re-announce the watermark so members that missed the
			// last kindSafe catch up.
			if p.safeUpTo > 0 {
				p.broadcastSafe()
			}
		}
		return
	}
	p.sendAckNow()
}

// onAck records a member's progress (sequencer only).
func (p *Process) onAck(m *message) {
	if m.ViewID != p.view.ID || p.view.Sequencer() != p.cfg.Self {
		return
	}
	if m.Delivered > p.acked[m.From] {
		p.acked[m.From] = m.Delivered
	}
	if m.Received > p.recvAcked[m.From] {
		p.recvAcked[m.From] = m.Received
	}
	p.advanceStability()
	if p.cfg.SafeDelivery {
		p.updateSafeWatermark()
	}
}

// advanceStability publishes a new stability watermark when every
// member has delivered further than the current one (sequencer only).
func (p *Process) advanceStability() {
	min := p.nextDeliver - 1
	for _, m := range p.view.Members {
		if m == p.cfg.Self {
			continue
		}
		if p.acked[m] < min {
			min = p.acked[m]
		}
	}
	if min > p.stable {
		p.applyStable(min)
		m := &message{Kind: kindStable, From: p.cfg.Self, ViewID: p.view.ID, Stable: min}
		p.sendToMembers(m)
	}
}

// onStable garbage-collects up to the announced watermark.
func (p *Process) onStable(m *message) {
	if m.ViewID != p.view.ID {
		return
	}
	p.applyStable(m.Stable)
}

func (p *Process) applyStable(w uint64) {
	if w <= p.stable {
		return
	}
	// Never GC beyond what we have delivered ourselves: the buffer
	// from nextDeliver up is still needed locally.
	if w > p.nextDeliver-1 {
		w = p.nextDeliver - 1
	}
	for s := p.stable + 1; s <= w; s++ {
		if d, ok := p.ordered[s]; ok {
			if seqs, ok2 := p.reqSeq[d.Sender]; ok2 {
				delete(seqs, d.SenderSeq)
			}
			delete(p.ordered, s)
		}
	}
	p.stable = w
}

// installView replaces the order state for a newly installed view and
// publishes the snapshot used by the View accessor. Callers emit the
// ViewEvent themselves (ordering relative to other events matters).
func (p *Process) installView(v View) {
	p.revokeLease() // any old-view lease dies with the view
	p.view = v
	p.nextSeq = 0
	p.nextDeliver = 1
	p.stable = 0
	p.ordered = make(map[uint64]*dataMsg)
	p.lastSeqd = make(map[MemberID]uint64)
	for m, s := range p.delivered {
		p.lastSeqd[m] = s
	}
	p.reqSeq = make(map[MemberID]map[uint64]uint64)
	p.acked = make(map[MemberID]uint64)
	p.safeUpTo = 0
	p.recvAcked = make(map[MemberID]uint64)
	p.gapSince = time.Time{}
	p.tailSeq = 0
	// Unflushed round output belongs to the old view: sequenced
	// messages live on in p.ordered (the flush reconciled them) and
	// queued requests are retransmitted by adoptView.
	p.outData = nil
	p.reqOut = nil
	p.ackPending = false
	p.safeDirty = false

	now := time.Now()
	for _, m := range v.Members {
		p.lastHeard[m] = now
	}

	p.viewMu.Lock()
	p.viewSnap = View{ID: v.ID, Members: append([]MemberID(nil), v.Members...), Primary: v.Primary}
	p.stats.Views++
	p.viewMu.Unlock()
}

// sendTo transmits one message to a peer by member ID.
func (p *Process) sendTo(to MemberID, m *message) {
	addr, ok := p.cfg.Peers[to]
	if !ok {
		return
	}
	e := m.encodeTo()
	p.sendRaw(addr, e.Bytes())
	e.Release()
}

// sendRaw hands one encoded datagram to the transport, counting
// locally reported drops (e.g. an overflowing peer send queue).
func (p *Process) sendRaw(addr transport.Addr, buf []byte) {
	if err := p.ep.Send(addr, buf); err != nil {
		p.bumpStat(func(st *Stats) { st.SendQueueDrops++ })
	}
}

// multicast transmits one message to every listed member except self,
// encoding it exactly once. The transport contract (payloads are not
// aliased after Send returns) lets all recipients share the buffer
// and the buffer return to the pool afterwards.
func (p *Process) multicast(targets []MemberID, m *message) {
	var e *codec.Encoder
	for _, t := range targets {
		if t == p.cfg.Self {
			continue
		}
		addr, ok := p.cfg.Peers[t]
		if !ok {
			continue
		}
		if e == nil {
			e = m.encodeTo()
		}
		p.sendRaw(addr, e.Bytes())
	}
	if e != nil {
		e.Release()
	}
}

// sendToMembers transmits to every other member of the current view.
func (p *Process) sendToMembers(m *message) {
	p.multicast(p.view.Members, m)
}

func sortedKeys[V any](m map[MemberID]V) []MemberID {
	ks := make([]MemberID, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
