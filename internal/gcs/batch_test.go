package gcs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"joshua/internal/simnet"
)

// TestBatchedBurstTotalOrder drives a concurrent burst through the
// default (batching-on) configuration and checks that coalescing is
// actually happening — BATCH frames sent, acks merged — without
// costing total order or per-sender FIFO.
func TestBatchedBurstTotalOrder(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, func(i int, c *Config) {
		c.SafeDelivery = true
	})

	const perSender = 40
	var wg sync.WaitGroup
	for i, o := range obs {
		wg.Add(1)
		go func(i int, o *observer) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				if err := o.p.Broadcast([]byte(fmt.Sprintf("m%d-%d", i, k))); err != nil {
					t.Errorf("broadcast: %v", err)
					return
				}
			}
		}(i, o)
	}
	wg.Wait()

	total := perSender * len(obs)
	waitFor(t, 10*time.Second, "all safe deliveries", func() bool {
		for _, o := range obs {
			if len(o.deliveredPayloads()) != total {
				return false
			}
		}
		return true
	})

	ref := obs[0].deliveredPayloads()
	for i, o := range obs[1:] {
		got := o.deliveredPayloads()
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("member %d delivery %d = %q, member 0 has %q (total order violated)", i+1, k, got[k], ref[k])
			}
		}
	}
	for s := 0; s < len(obs); s++ {
		last := -1
		for _, pay := range ref {
			var snd, k int
			fmt.Sscanf(pay, "m%d-%d", &snd, &k)
			if snd == s {
				if k != last+1 {
					t.Fatalf("sender %d FIFO violated: %d after %d", s, k, last)
				}
				last = k
			}
		}
		if last != perSender-1 {
			t.Fatalf("sender %d: delivered %d of %d", s, last+1, perSender)
		}
	}

	// The burst must actually have exercised the coalescing paths: the
	// sequencer (m0, lowest ID) emitted BATCH frames, and at least one
	// process merged acknowledgments.
	if st := obs[0].p.Stats(); st.BatchesSent == 0 {
		t.Errorf("sequencer sent no batches under a concurrent burst: %+v", st)
	}
	var coalesced uint64
	for _, o := range obs {
		coalesced += o.p.Stats().AcksCoalesced
	}
	if coalesced == 0 {
		t.Error("no acks were coalesced under a concurrent safe-delivery burst")
	}
}

// TestAblationKnobsDisableBatching pins the Transis-faithful ablation:
// MaxBatch=1 and AckDelay<0 must reproduce the one-datagram-per-
// message, one-ack-per-delivery behavior exactly — zero batches, zero
// coalesced acks, and unchanged delivery semantics.
func TestAblationKnobsDisableBatching(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 2, func(i int, c *Config) {
		c.SafeDelivery = true
		c.MaxBatch = 1
		c.AckDelay = -1
	})

	const n = 30
	for k := 0; k < n; k++ {
		if err := obs[1].p.Broadcast([]byte(fmt.Sprintf("m1-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "all deliveries without batching", func() bool {
		return len(obs[0].deliveredPayloads()) == n && len(obs[1].deliveredPayloads()) == n
	})
	for i, o := range obs {
		st := o.p.Stats()
		if st.BatchesSent != 0 {
			t.Errorf("member %d sent %d batches with MaxBatch=1", i, st.BatchesSent)
		}
		if st.AcksCoalesced != 0 {
			t.Errorf("member %d coalesced %d acks with AckDelay<0", i, st.AcksCoalesced)
		}
	}
}

// TestBatchStraddlesViewChange crashes the sequencer in the middle of
// a batched burst: BATCH frames in flight are cut by the flush, the
// survivors reconcile, and every survivor-sent message is delivered
// exactly once in the same order at both survivors (no loss from
// discarded REQBATCHes, no duplication from batch retransmission).
func TestBatchStraddlesViewChange(t *testing.T) {
	net := simnet.New(simnet.Config{Latency: simnet.Latency{Remote: time.Millisecond}})
	defer net.Close()
	obs := group(t, net, 3, nil) // batching on by default

	stop := make(chan struct{})
	sent := make([]int, 3)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 0
			for {
				select {
				case <-stop:
					sent[i] = k
					return
				default:
				}
				obs[i].p.Broadcast([]byte(fmt.Sprintf("s%d-%d", i, k)))
				k++
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	net.CrashHost("host0") // kill the sequencer mid-burst
	obs[0].p.Close()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	waitFor(t, 15*time.Second, "survivors install new view", func() bool {
		for _, i := range []int{1, 2} {
			if v, ok := obs[i].lastView(); !ok || v.ID < 2 || len(v.Members) != 2 {
				return false
			}
		}
		return true
	})
	// Every message the survivors broadcast must come back, exactly
	// once: batches straddling the view change are reconciled by the
	// flush, and pending REQ/REQBATCH payloads are retransmitted in
	// the new view.
	expect := sent[1] + sent[2]
	waitFor(t, 15*time.Second, "survivor messages recovered", func() bool {
		return len(obs[1].deliveredPayloads()) >= expect &&
			len(obs[2].deliveredPayloads()) >= expect
	})
	for _, i := range []int{1, 2} {
		got := obs[i].deliveredPayloads()
		seen := make(map[string]bool, len(got))
		for _, pay := range got {
			if seen[pay] {
				t.Fatalf("member %d delivered %q twice (batch retransmission duplicated)", i, pay)
			}
			seen[pay] = true
		}
		if len(got) != expect {
			t.Fatalf("member %d delivered %d messages, survivors sent %d", i, len(got), expect)
		}
	}
	p1, p2 := obs[1].deliveredPayloads(), obs[2].deliveredPayloads()
	for k := range p1 {
		if p1[k] != p2[k] {
			t.Fatalf("survivors diverge at delivery %d: %q vs %q", k, p1[k], p2[k])
		}
	}
}
