package gcs

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"joshua/internal/simnet"
)

// TestChaosInvariants drives a group through seeded random schedules
// of broadcasts, message loss, jitter, and crashes, then checks the
// extended-virtual-synchrony safety properties:
//
//  1. survivors deliver identical sequences (total order);
//  2. no member ever delivers a duplicate;
//  3. under safe delivery, a crashed member's delivery stream is a
//     prefix of the survivors' (nothing it acted on is lost);
//  4. every message sent by a surviving member is delivered at every
//     survivor (liveness after quiescence).
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos schedules")
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed, seed%2 == 0) // alternate safe/agreed delivery
		})
	}
}

func runChaos(t *testing.T, seed int64, safe bool) {
	t.Helper()
	const members = 4
	rng := rand.New(rand.NewSource(seed))

	net := simnet.New(simnet.Config{
		Latency:  simnet.Latency{Remote: time.Millisecond, Jitter: 2 * time.Millisecond},
		DropRate: 0.02,
		Seed:     seed,
	})
	defer net.Close()
	obs := group(t, net, members, func(i int, c *Config) {
		c.SafeDelivery = safe
		// Race-detector runs slow everything down severely; generous
		// timeouts keep healthy-but-slow members from being excluded.
		c.Heartbeat = 15 * time.Millisecond
		c.FailTimeout = 250 * time.Millisecond
		c.ResendInterval = 60 * time.Millisecond
		c.FlushTimeout = 400 * time.Millisecond
	})

	// Random senders, paced; two random crashes at random times, never
	// killing the last member.
	var mu sync.Mutex
	crashed := map[int]bool{}
	sent := make([]int, members) // per-member successful broadcasts

	crashSchedule := []int{100 + rng.Intn(200), 400 + rng.Intn(300)} // ms
	start := time.Now()
	nextCrash := 0

	for time.Since(start) < 900*time.Millisecond {
		mu.Lock()
		// Crash if the schedule says so.
		if nextCrash < len(crashSchedule) &&
			time.Since(start) > time.Duration(crashSchedule[nextCrash])*time.Millisecond &&
			len(crashed) < members-1 {
			victim := rng.Intn(members)
			for crashed[victim] {
				victim = (victim + 1) % members
			}
			crashed[victim] = true
			net.CrashHost(fmt.Sprintf("host%d", victim))
			obs[victim].p.Close()
			nextCrash++
		}
		// Random broadcast from a live member.
		sender := rng.Intn(members)
		if !crashed[sender] {
			payload := fmt.Sprintf("s%d-%d", sender, sent[sender])
			if err := obs[sender].p.Broadcast([]byte(payload)); err == nil {
				sent[sender]++
			}
		}
		mu.Unlock()
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
	}

	mu.Lock()
	var survivors []int
	for i := 0; i < members; i++ {
		if !crashed[i] {
			survivors = append(survivors, i)
		}
	}
	sentCopy := append([]int(nil), sent...)
	crashedCopy := map[int]bool{}
	for k, v := range crashed {
		crashedCopy[k] = v
	}
	mu.Unlock()

	if len(survivors) == members {
		t.Fatal("chaos schedule crashed nobody; vacuous")
	}

	// Liveness: every message sent by a survivor reaches every
	// survivor.
	waitFor(t, 30*time.Second, "survivor messages all delivered", func() bool {
		for _, i := range survivors {
			got := map[int]int{} // sender -> delivered count
			for _, p := range obs[i].deliveredPayloads() {
				var s, k int
				fmt.Sscanf(p, "s%d-%d", &s, &k)
				got[s]++
			}
			for _, s := range survivors {
				if got[s] < sentCopy[s] {
					return false
				}
			}
		}
		return true
	})
	// Quiescence: no delivery count changes for a beat.
	waitFor(t, 20*time.Second, "quiescence", func() bool {
		before := make([]int, len(survivors))
		for k, i := range survivors {
			before[k] = len(obs[i].deliveredPayloads())
		}
		time.Sleep(100 * time.Millisecond)
		for k, i := range survivors {
			if len(obs[i].deliveredPayloads()) != before[k] {
				return false
			}
		}
		return true
	})

	// Invariant 1+2: identical sequences at survivors, no duplicates.
	ref := obs[survivors[0]].deliveredPayloads()
	dup := map[string]bool{}
	for _, p := range ref {
		if dup[p] {
			t.Fatalf("seed %d: duplicate delivery %q", seed, p)
		}
		dup[p] = true
	}
	for _, i := range survivors[1:] {
		got := obs[i].deliveredPayloads()
		if len(got) != len(ref) {
			t.Fatalf("seed %d: survivor %d delivered %d, survivor %d delivered %d\nref: %s\ngot: %s",
				seed, survivors[0], len(ref), i, len(got),
				strings.Join(ref, ","), strings.Join(got, ","))
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("seed %d: order differs at %d: %q vs %q", seed, k, ref[k], got[k])
			}
		}
	}

	// Invariant 3 (safe delivery only): crashed members' streams are
	// prefixes of the survivors' stream — nothing a dead head acted on
	// is missing from the group's history.
	if safe {
		for i := range crashedCopy {
			dead := obs[i].deliveredPayloads()
			if len(dead) > len(ref) {
				t.Fatalf("seed %d: crashed member %d delivered more (%d) than survivors (%d)",
					seed, i, len(dead), len(ref))
			}
			for k := range dead {
				if dead[k] != ref[k] {
					t.Fatalf("seed %d: crashed member %d diverged at %d: %q vs %q",
						seed, i, k, dead[k], ref[k])
				}
			}
		}
	}
}
