// Package e2e builds the real command binaries (joshuad, jmomd, jsub,
// jstat, jdel, jhold, jrls) and drives a two-head deployment over
// actual TCP sockets and OS processes — the closest this repository
// gets to the paper's physical test cluster, including a kill -9 of a
// head node mid-service.
package e2e

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// binDir holds the built binaries, shared across tests in this
// package.
var (
	binOnce sync.Once
	binDir  string
	binErr  error
)

func buildBinaries(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "joshua-e2e-bin")
		if binErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = repoRoot()
		out, err := cmd.CombinedOutput()
		if err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binDir
}

func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// freePorts grabs n distinct free TCP ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

type deployment struct {
	t       *testing.T
	bin     string
	conf    string
	daemons map[string]*exec.Cmd
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	bin := buildBinaries(t)
	p := freePorts(t, 7)
	conf := filepath.Join(t.TempDir(), "cluster.conf")
	body := fmt.Sprintf(`server_name = cluster

[head head0]
gcs    = 127.0.0.1:%d
client = 127.0.0.1:%d
pbs    = 127.0.0.1:%d

[head head1]
gcs    = 127.0.0.1:%d
client = 127.0.0.1:%d
pbs    = 127.0.0.1:%d

[compute compute0]
mom = 127.0.0.1:%d

[options]
exclusive = true
`, p[0], p[1], p[2], p[3], p[4], p[5], p[6])
	if err := os.WriteFile(conf, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	d := &deployment{t: t, bin: bin, conf: conf, daemons: map[string]*exec.Cmd{}}
	d.startDaemon("joshuad", "head0")
	d.startDaemon("joshuad", "head1")
	d.startDaemon("jmomd", "compute0")
	t.Cleanup(d.stopAll)

	// Wait for the group to answer a status query.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := d.run("jstat"); err == nil {
			return d
		}
		if time.Now().After(deadline) {
			t.Fatal("deployment never became ready")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func (d *deployment) startDaemon(name, id string) {
	cmd := exec.Command(filepath.Join(d.bin, name), "-config", d.conf, "-id", id)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		d.t.Fatal(err)
	}
	d.daemons[id] = cmd
}

// killHard delivers SIGKILL — the forced shutdown of the paper's
// failure testing.
func (d *deployment) killHard(id string) {
	cmd := d.daemons[id]
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGKILL)
	cmd.Wait()
	delete(d.daemons, id)
}

func (d *deployment) stopAll() {
	for id, cmd := range d.daemons {
		cmd.Process.Kill()
		cmd.Wait()
		delete(d.daemons, id)
	}
}

// run executes a control command against the deployment.
func (d *deployment) run(name string, args ...string) (string, error) {
	full := append([]string{"-config", d.conf}, args...)
	cmd := exec.Command(filepath.Join(d.bin, name), full...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	d := deploy(t)

	// Submit a short job via jsub and watch it complete via jstat.
	out, err := d.run("jsub", "-N", "e2e-job", "-o", "alice", "-w", "300ms")
	if err != nil {
		t.Fatalf("jsub: %v\n%s", err, out)
	}
	jobID := strings.TrimSpace(out)
	if jobID != "1.cluster" {
		t.Fatalf("job ID = %q", jobID)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		out, err := d.run("jstat", "-f", jobID)
		if err == nil && strings.Contains(out, "job_state = C") {
			if !strings.Contains(out, "exit_status = 0") {
				t.Fatalf("unexpected completion record:\n%s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed; last jstat:\n%s", out)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Hold / release / delete round trip.
	out, err = d.run("jsub", "-N", "held", "-hold")
	if err != nil {
		t.Fatalf("jsub -hold: %v\n%s", err, out)
	}
	held := strings.TrimSpace(out)
	if out, err := d.run("jrls", held); err != nil {
		t.Fatalf("jrls: %v\n%s", err, out)
	}
	if out, err := d.run("jdel", held); err != nil {
		// The released job may already have completed (it has zero
		// wall time); unknown-job is then the correct answer.
		if !strings.Contains(out, "Unknown Job Id") && !strings.Contains(out, "invalid for state") {
			t.Fatalf("jdel: %v\n%s", err, out)
		}
	}
}

func TestBinariesSurviveHeadKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	d := deploy(t)

	out, err := d.run("jsub", "-N", "pre-kill", "-hold")
	if err != nil {
		t.Fatalf("jsub: %v\n%s", err, out)
	}

	// kill -9 the sequencer head.
	d.killHard("head0")

	// The service keeps answering; state is intact.
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for {
		out, err := d.run("jsub", "-N", "post-kill", "-hold")
		if err == nil {
			if strings.TrimSpace(out) != "2.cluster" {
				t.Fatalf("post-kill job ID = %q (state lost?)", strings.TrimSpace(out))
			}
			break
		}
		lastErr = fmt.Errorf("%v: %s", err, out)
		if time.Now().After(deadline) {
			t.Fatalf("service unavailable after head kill: %v", lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}

	out, err = d.run("jstat")
	if err != nil {
		t.Fatalf("jstat after kill: %v\n%s", err, out)
	}
	if !strings.Contains(out, "pre-kill") || !strings.Contains(out, "post-kill") {
		t.Fatalf("queue state lost:\n%s", out)
	}
}

func TestBinariesDirectivesAndNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	d := deploy(t)

	// A job script with #PBS directives, submitted via stdin.
	script := "#!/bin/sh\n#PBS -N scripted\n#PBS -l nodes=1,walltime=00:00:01\necho scripted output\n"
	scriptPath := filepath.Join(t.TempDir(), "job.sh")
	if err := os.WriteFile(scriptPath, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err := d.run("jsub", scriptPath)
	if err != nil {
		t.Fatalf("jsub script: %v\n%s", err, out)
	}
	jobID := strings.TrimSpace(out)

	deadline := time.Now().Add(20 * time.Second)
	for {
		out, err := d.run("jstat", "-f", jobID)
		if err == nil && strings.Contains(out, "job_state = C") {
			if !strings.Contains(out, "Job_Name = scripted") {
				t.Fatalf("directive name lost:\n%s", out)
			}
			if !strings.Contains(out, "scripted output") {
				t.Fatalf("captured output missing:\n%s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scripted job never completed:\n%s", out)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Operator report from every head.
	out, err = d.run("jadmin")
	if err != nil {
		t.Fatalf("jadmin: %v\n%s", err, out)
	}
	if !strings.Contains(out, "head0") || !strings.Contains(out, "mode") ||
		!strings.Contains(out, "primary") {
		t.Fatalf("jadmin output:\n%s", out)
	}

	// Node management round trip.
	if out, err := d.run("jnodes", "-o", "compute0"); err != nil {
		t.Fatalf("jnodes -o: %v\n%s", err, out)
	}
	out, err = d.run("jnodes")
	if err != nil || !strings.Contains(out, "offline") {
		t.Fatalf("jnodes listing: %v\n%s", err, out)
	}
	if out, err := d.run("jnodes", "-c", "compute0"); err != nil {
		t.Fatalf("jnodes -c: %v\n%s", err, out)
	}
	out, err = d.run("jnodes")
	if err != nil || strings.Contains(out, "offline") {
		t.Fatalf("node still offline: %v\n%s", err, out)
	}
}
