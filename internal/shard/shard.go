// Package shard partitions the job space of a JOSHUA deployment
// across N independent replicated head-node groups ("shards"). Each
// shard is a complete JOSHUA head-set — group communication, the
// replication engine with its WAL, and a PBS batch service — that
// totally orders only its own commands, so aggregate submit
// throughput scales with the shard count instead of being capped by
// one sequencer event loop.
//
// The partition is deterministic and shared by clients and servers:
//
//   - Jobs are owned by the shard their ID hashes to (RouteJob). A
//     shard only ever *assigns* IDs it owns (see Owns and
//     pbs.Config.IDFilter), so any party holding a job ID can compute
//     the owning shard locally — no directory service, no lookup
//     round trip. Submissions carry no ID yet and may be placed on
//     any shard; the chosen shard mints an ID that routes back to it.
//
//   - Compute nodes are statically partitioned across shards
//     (PartitionNodes): each shard schedules only its own nodes, so
//     shard schedulers never race for a machine.
//
// Nothing is ordered *across* shards: two jobs on different shards
// have no defined serialization, exactly as two jobs submitted to two
// independent clusters do not. Per-shard guarantees (total order,
// exactly-once, prefix-consistent reads) are unchanged — a shard is
// just another replica group.
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

// Map is the static shard map of a deployment: how many shards exist,
// where each shard's heads answer client RPCs, and which compute
// nodes each shard owns. It is immutable after construction and safe
// for concurrent use.
type Map struct {
	// Heads[s] lists the client-RPC addresses of shard s's head
	// nodes, in preference order. len(Heads) is the shard count.
	Heads [][]transport.Addr
	// Nodes[s] lists the compute-node names shard s schedules.
	// Optional (clients that never issue node operations may leave it
	// nil); when set, len(Nodes) == len(Heads).
	Nodes [][]string
}

// Single wraps a single replication group (the unsharded deployment)
// in a one-entry map, so every consumer can speak shard-map terms.
func Single(heads []transport.Addr) *Map {
	return &Map{Heads: [][]transport.Addr{heads}}
}

// Count returns the number of shards.
func (m *Map) Count() int { return len(m.Heads) }

// RouteJob returns the shard that owns a job ID.
func (m *Map) RouteJob(id pbs.JobID) int {
	return RouteJob(id, len(m.Heads))
}

// RouteNode returns the shard owning a compute node, or -1 when the
// map carries no node partition or the node is unknown (callers then
// fan out).
func (m *Map) RouteNode(name string) int {
	for s, nodes := range m.Nodes {
		for _, n := range nodes {
			if n == name {
				return s
			}
		}
	}
	return -1
}

// RouteJob maps a job ID to its owning shard among count shards: an
// FNV-1a hash of the ID string, reduced mod count. Deterministic
// everywhere — client libraries, head nodes, and tools agree with no
// coordination. Array sub-jobs ("17[3].cluster") hash as their base ID
// ("17.cluster"), so one array — one scheduler pass, one reservation
// domain — always lives on one shard.
func RouteJob(id pbs.JobID, count int) int {
	if count <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(canonicalID(id)))
	return int(h.Sum32() % uint32(count))
}

// canonicalID strips the array-index bracket from a job ID:
// "17[3].cluster" routes as "17.cluster". IDs without a bracket are
// returned unchanged with no allocation.
func canonicalID(id pbs.JobID) pbs.JobID {
	s := string(id)
	i := strings.IndexByte(s, '[')
	if i < 0 {
		return id
	}
	j := strings.IndexByte(s[i:], ']')
	if j < 0 {
		return id
	}
	return pbs.JobID(s[:i] + s[i+j+1:])
}

// Owns reports whether shard index owns the given job ID under a
// count-shard partition.
func Owns(id pbs.JobID, index, count int) bool {
	return RouteJob(id, count) == index
}

// IDFilter returns the pbs.Config.IDFilter for one shard: the batch
// service advances its submission sequence past any candidate ID the
// shard does not own, so every ID a shard assigns hashes back to it.
// Replicas of the same shard share (index, count) and therefore skip
// identically — ID assignment stays deterministic. Disjointness falls
// out: a given sequence number produces the same candidate ID on
// every shard, and exactly one shard accepts it.
func IDFilter(index, count int) func(pbs.JobID) bool {
	if count <= 1 {
		return nil
	}
	return func(id pbs.JobID) bool { return Owns(id, index, count) }
}

// PartitionNodes deals compute nodes round-robin across count shards:
// node i goes to shard i mod count. Round-robin keeps the per-shard
// pools balanced within one node and is stable under appending new
// nodes (existing assignments never move).
func PartitionNodes(nodes []string, count int) [][]string {
	if count <= 1 {
		return [][]string{append([]string(nil), nodes...)}
	}
	parts := make([][]string, count)
	for i, n := range nodes {
		parts[i%count] = append(parts[i%count], n)
	}
	return parts
}

// Validate checks a map for structural sanity: at least one shard,
// every shard has at least one head, and the node partition (when
// present) matches the shard count.
func (m *Map) Validate() error {
	if len(m.Heads) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	for s, heads := range m.Heads {
		if len(heads) == 0 {
			return fmt.Errorf("shard: shard %d has no heads", s)
		}
	}
	if m.Nodes != nil && len(m.Nodes) != len(m.Heads) {
		return fmt.Errorf("shard: node partition covers %d shards, map has %d", len(m.Nodes), len(m.Heads))
	}
	return nil
}
