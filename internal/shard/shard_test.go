package shard

import (
	"fmt"
	"testing"

	"joshua/internal/pbs"
	"joshua/internal/transport"
)

func TestRouteJobDeterministicAndInRange(t *testing.T) {
	for count := 1; count <= 8; count++ {
		for i := 0; i < 100; i++ {
			id := pbs.JobID(fmt.Sprintf("%d.cluster", i))
			s := RouteJob(id, count)
			if s < 0 || s >= count {
				t.Fatalf("RouteJob(%s, %d) = %d out of range", id, count, s)
			}
			if again := RouteJob(id, count); again != s {
				t.Fatalf("RouteJob(%s, %d) not deterministic: %d then %d", id, count, s, again)
			}
		}
	}
}

func TestRouteJobSpreadsAcrossShards(t *testing.T) {
	// The hash need not be perfectly uniform, but every shard must own
	// a healthy fraction of a realistic ID stream — otherwise the
	// partition cannot scale submissions.
	const count = 4
	perShard := make([]int, count)
	const n = 1000
	for i := 0; i < n; i++ {
		perShard[RouteJob(pbs.JobID(fmt.Sprintf("%d.cluster", i)), count)]++
	}
	for s, got := range perShard {
		if got < n/count/2 {
			t.Errorf("shard %d owns only %d of %d IDs; hash is badly skewed: %v", s, got, n, perShard)
		}
	}
}

func TestOwnsPartitionIsExclusiveAndExhaustive(t *testing.T) {
	// Every candidate ID is owned by exactly one shard: this is what
	// makes per-shard ID assignment (IDFilter skipping foreign
	// sequence numbers) produce globally unique IDs.
	const count = 4
	for i := 0; i < 200; i++ {
		id := pbs.JobID(fmt.Sprintf("%d.cluster", i))
		owners := 0
		for s := 0; s < count; s++ {
			if Owns(id, s, count) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("ID %s has %d owners, want exactly 1", id, owners)
		}
	}
}

func TestIDFilterAcceptsOnlyOwnedIDs(t *testing.T) {
	const count = 3
	for s := 0; s < count; s++ {
		f := IDFilter(s, count)
		for i := 0; i < 50; i++ {
			id := pbs.JobID(fmt.Sprintf("%d.cluster", i))
			if f(id) != Owns(id, s, count) {
				t.Fatalf("IDFilter(%d,%d)(%s) disagrees with Owns", s, count, id)
			}
		}
	}
	if IDFilter(0, 1) != nil {
		t.Error("IDFilter for a single shard should be nil (no filtering)")
	}
}

func TestPartitionNodesRoundRobin(t *testing.T) {
	nodes := []string{"c0", "c1", "c2", "c3", "c4"}
	parts := PartitionNodes(nodes, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2", len(parts))
	}
	want0 := []string{"c0", "c2", "c4"}
	want1 := []string{"c1", "c3"}
	for i, w := range want0 {
		if parts[0][i] != w {
			t.Errorf("shard 0 partition = %v, want %v", parts[0], want0)
			break
		}
	}
	for i, w := range want1 {
		if parts[1][i] != w {
			t.Errorf("shard 1 partition = %v, want %v", parts[1], want1)
			break
		}
	}

	// Single shard keeps everything.
	whole := PartitionNodes(nodes, 1)
	if len(whole) != 1 || len(whole[0]) != len(nodes) {
		t.Errorf("single-shard partition = %v, want all nodes", whole)
	}
}

func TestMapRouteNode(t *testing.T) {
	m := &Map{
		Heads: [][]transport.Addr{{"s0h0/joshua"}, {"s1h0/joshua"}},
		Nodes: [][]string{{"c0", "c2"}, {"c1"}},
	}
	if got := m.RouteNode("c1"); got != 1 {
		t.Errorf("RouteNode(c1) = %d, want 1", got)
	}
	if got := m.RouteNode("c2"); got != 0 {
		t.Errorf("RouteNode(c2) = %d, want 0", got)
	}
	if got := m.RouteNode("nope"); got != -1 {
		t.Errorf("RouteNode(nope) = %d, want -1", got)
	}
}

func TestMapValidate(t *testing.T) {
	good := &Map{Heads: [][]transport.Addr{{"a"}, {"b"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	for _, bad := range []*Map{
		{},
		{Heads: [][]transport.Addr{{"a"}, {}}},
		{Heads: [][]transport.Addr{{"a"}}, Nodes: [][]string{{"c0"}, {"c1"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid map %+v accepted", bad)
		}
	}
}
