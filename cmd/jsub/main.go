// Command jsub submits a job to the JOSHUA head-node group — the
// highly available qsub of the paper. It may be pointed at any active
// head node (it fails over automatically) and can replace qsub via a
// shell alias for 100% PBS interface compliance, as the paper
// suggests ("alias qsub=jsub").
//
// Usage:
//
//	jsub -config cluster.conf [-N name] [-o owner] [-p priority]
//	     [-l nodes=N,ncpus=C,mem=512mb] [-w walltime] [-h]
//	     [-t start-end | -t count] [script-file]
//
// -l accepts either a PBS resource list ("nodes=2,ncpus=2,mem=1gb")
// or, for compatibility with earlier releases, a bare integer node
// count. -t likewise accepts either an array range ("0-99", expanded
// into sub-jobs named id[idx].server) or a bare integer, which keeps
// its historical meaning of submitting that many identical jobs in
// one command.
//
// The job script is read from the named file or from standard input.
// On success the new job identifier is printed, qsub-style.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

// flagPassed reports whether a flag appeared on the command line (as
// opposed to holding its default value).
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		name       = flag.String("N", "", "job name (default: script file name or STDIN)")
		owner      = flag.String("o", os.Getenv("USER"), "job owner")
		resources  = flag.String("l", "", "resource list (nodes=N,ncpus=C,mem=SIZE,walltime=HH:MM:SS) or a bare node count")
		wallTime   = flag.Duration("w", 0, "simulated wall time (e.g. 30s)")
		hold       = flag.Bool("hold", false, "submit in held state (qsub -h)")
		priority   = flag.Int("p", 0, "user priority (higher runs earlier under priority/backfill policies)")
		arrayOrN   = flag.String("t", "", "job array range (start-end) or a bare count of identical jobs")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jsub: %v", err)
	}

	script := ""
	jobName := *name
	scriptFile := ""
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		script = string(b)
		scriptFile = flag.Arg(0)
	} else if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			cli.Fatalf("jsub: reading stdin: %v", err)
		}
		script = string(b)
	}

	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jsub: %v", err)
	}
	defer client.Close()

	req := pbs.SubmitRequest{
		Name:     jobName,
		Owner:    *owner,
		Script:   script,
		WallTime: *wallTime,
		Hold:     *hold,
		Priority: *priority,
	}
	// Only explicitly passed flags should override #PBS directives.
	if *resources != "" {
		if n, err := strconv.Atoi(*resources); err == nil {
			// Bare integer: the legacy -l node-count spelling.
			req.NodeCount = n
		} else if err := pbs.ApplyResourceList(&req, *resources); err != nil {
			cli.Fatalf("jsub: %v", err)
		}
	}
	// -t: an array range ("0-99") or the legacy bare batch count.
	batch := 1
	if *arrayOrN != "" {
		if n, err := strconv.Atoi(*arrayOrN); err == nil {
			batch = n
		} else if req.Array, err = pbs.ParseArrayRange(*arrayOrN); err != nil {
			cli.Fatalf("jsub: %v", err)
		}
	}
	if err := pbs.ApplyDirectives(&req); err != nil {
		cli.Fatalf("jsub: %v", err)
	}
	// Precedence for the job name: -N flag, then #PBS -N, then the
	// script file name (qsub's default).
	if req.Name == "" {
		req.Name = scriptFile
	}
	switch {
	case req.Array.Set:
		jobs, err := client.SubmitArray(req)
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		for _, j := range jobs {
			fmt.Println(j.ID)
		}
	case batch > 1:
		jobs, err := client.SubmitBatch(req, batch)
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		for _, j := range jobs {
			fmt.Println(j.ID)
		}
	default:
		j, err := client.Submit(req)
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		fmt.Println(j.ID)
	}
}
