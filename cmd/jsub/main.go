// Command jsub submits a job to the JOSHUA head-node group — the
// highly available qsub of the paper. It may be pointed at any active
// head node (it fails over automatically) and can replace qsub via a
// shell alias for 100% PBS interface compliance, as the paper
// suggests ("alias qsub=jsub").
//
// Usage:
//
//	jsub -config cluster.conf [-N name] [-o owner] [-l nodes=N]
//	     [-w walltime] [-h] [-t count] [script-file]
//
// The job script is read from the named file or from standard input.
// On success the new job identifier is printed, qsub-style.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

// flagPassed reports whether a flag appeared on the command line (as
// opposed to holding its default value).
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		name       = flag.String("N", "", "job name (default: script file name or STDIN)")
		owner      = flag.String("o", os.Getenv("USER"), "job owner")
		nodes      = flag.Int("l", 1, "number of compute nodes (nodect)")
		wallTime   = flag.Duration("w", 0, "simulated wall time (e.g. 30s)")
		hold       = flag.Bool("hold", false, "submit in held state (qsub -h)")
		count      = flag.Int("t", 1, "submit this many identical jobs in one command")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jsub: %v", err)
	}

	script := ""
	jobName := *name
	scriptFile := ""
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		script = string(b)
		scriptFile = flag.Arg(0)
	} else if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			cli.Fatalf("jsub: reading stdin: %v", err)
		}
		script = string(b)
	}

	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jsub: %v", err)
	}
	defer client.Close()

	req := pbs.SubmitRequest{
		Name:     jobName,
		Owner:    *owner,
		Script:   script,
		WallTime: *wallTime,
		Hold:     *hold,
	}
	// Only explicitly passed flags should override #PBS directives.
	if *nodes != 1 || flagPassed("l") {
		req.NodeCount = *nodes
	}
	if err := pbs.ApplyDirectives(&req); err != nil {
		cli.Fatalf("jsub: %v", err)
	}
	if req.NodeCount == 0 {
		req.NodeCount = *nodes
	}
	// Precedence for the job name: -N flag, then #PBS -N, then the
	// script file name (qsub's default).
	if req.Name == "" {
		req.Name = scriptFile
	}
	if *count > 1 {
		jobs, err := client.SubmitBatch(req, *count)
		if err != nil {
			cli.Fatalf("jsub: %v", err)
		}
		for _, j := range jobs {
			fmt.Println(j.ID)
		}
		return
	}
	j, err := client.Submit(req)
	if err != nil {
		cli.Fatalf("jsub: %v", err)
	}
	fmt.Println(j.ID)
}
