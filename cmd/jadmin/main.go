// Command jadmin reports the operational state of every JOSHUA head
// node: group view, primary status, queue gauges, replication and
// group-communication counters — what an operator checks before and
// after maintenance.
//
// Usage:
//
//	jadmin -config cluster.conf
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"joshua/internal/cli"
	"joshua/internal/config"
	"joshua/internal/joshua"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

func main() {
	configPath := flag.String("config", "", "cluster configuration file")
	bindAddr := flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
	flag.Parse()

	path := *configPath
	if path == "" {
		path = os.Getenv("JOSHUA_CONFIG")
	}
	conf, err := config.LoadCluster(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jadmin:", err)
		os.Exit(1)
	}

	// Query each head individually: jadmin wants per-head state, not
	// the failover view a normal client sees.
	for _, h := range conf.Heads {
		fmt.Printf("=== %s (%s) ===\n", h.Name, h.Client)
		info, err := queryHead(conf, h.ClientAddr(), *bindAddr)
		if err != nil {
			fmt.Printf("  unreachable: %v\n", err)
			continue
		}
		keys := make([]string, 0, len(info))
		for k := range info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-16s %s\n", k, info[k])
		}
	}
}

func queryHead(conf *config.ClusterFile, head transport.Addr, bind string) (map[string]string, error) {
	logical := transport.Addr(fmt.Sprintf("jadmin-%d-%s/client", os.Getpid(), head.Host()))
	ep, err := tcpnet.Listen(logical, cli.BindAddr(bind, conf), conf.Resolver())
	if err != nil {
		return nil, err
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{head},
		AttemptTimeout: 2 * time.Second,
		Rounds:         1,
	})
	if err != nil {
		ep.Close()
		return nil, err
	}
	defer cli.Close()
	return cli.Info()
}
