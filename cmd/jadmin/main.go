// Command jadmin reports the operational state of every JOSHUA head
// node: group view, primary status, queue gauges, replication and
// group-communication counters — what an operator checks before and
// after maintenance.
//
// Sharded deployments are reported shard by shard, followed by a
// cluster-total section that sums the queue gauges and the
// submit/read/WAL/apply counters across shards (one representative
// head per shard: replicas of a shard agree on replicated state, so
// summing every head would double-count).
//
// Usage:
//
//	jadmin -config cluster.conf
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"joshua/internal/cli"
	"joshua/internal/config"
	"joshua/internal/joshua"
	"joshua/internal/transport"
	"joshua/internal/transport/tcpnet"
)

// summedKeys are the counters and gauges the cluster-total section
// adds up across shards. Gauges (jobs_*) and replicated counters
// (cmds_applied, wal_*) agree on every replica of a shard; per-head
// counters (local_reads, dedup_hits) are summed within a shard too,
// so for those the total is across all heads.
var perShardKeys = []string{
	"jobs_waiting", "jobs_running", "jobs_completed",
	"cmds_applied", "wal_appends", "wal_fsyncs", "wal_bytes",
	"apply_parallel", "apply_barriers",
}

var perHeadKeys = []string{
	"cmds_replied", "dedup_hits", "local_reads", "read_cache_hits",
	"reply_queue_drops",
	// lease_held is a per-head boolean gauge, reported but not summed.
	"lease_reads", "lease_fallbacks", "lease_revocations",
	// ckpt_inflight is a per-head boolean gauge; duration/bytes are
	// per-head last-observed values, failures/chunks are counters.
	"ckpt_last_duration_ns", "ckpt_bytes", "ckpt_failures",
	"transfer_stream_chunks",
}

func main() {
	configPath := flag.String("config", "", "cluster configuration file")
	bindAddr := flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
	flag.Parse()

	path := *configPath
	if path == "" {
		path = os.Getenv("JOSHUA_CONFIG")
	}
	conf, err := config.LoadCluster(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jadmin:", err)
		os.Exit(1)
	}

	totals := map[string]uint64{}
	// Query each head individually: jadmin wants per-head state, not
	// the failover view a normal client sees.
	for s, heads := range conf.ShardHeads() {
		if conf.Shards > 1 {
			fmt.Printf("--- shard %d ---\n", s)
		}
		shardCounted := false
		for _, h := range heads {
			fmt.Printf("=== %s (%s) ===\n", h.Name, h.Client)
			info, err := queryHead(conf, h.ClientAddr(), *bindAddr)
			if err != nil {
				fmt.Printf("  unreachable: %v\n", err)
				continue
			}
			keys := make([]string, 0, len(info))
			for k := range info {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-16s %s\n", k, info[k])
			}
			addKeys(totals, info, perHeadKeys)
			if !shardCounted {
				// First reachable head stands for the shard's
				// replicated state.
				addKeys(totals, info, perShardKeys)
				shardCounted = true
			}
		}
	}
	if conf.Shards > 1 {
		fmt.Printf("=== cluster totals (%d shards) ===\n", conf.Shards)
		keys := make([]string, 0, len(totals))
		for k := range totals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-16s %d\n", k, totals[k])
		}
	}
}

// addKeys accumulates the named numeric fields of one head's report.
func addKeys(totals map[string]uint64, info map[string]string, keys []string) {
	for _, k := range keys {
		v, ok := info[k]
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			continue
		}
		totals[k] += n
	}
}

func queryHead(conf *config.ClusterFile, head transport.Addr, bind string) (map[string]string, error) {
	logical := transport.Addr(fmt.Sprintf("jadmin-%d-%s/client", os.Getpid(), head.Host()))
	ep, err := tcpnet.Listen(logical, cli.BindAddr(bind, conf), conf.Resolver())
	if err != nil {
		return nil, err
	}
	cli, err := joshua.NewClient(joshua.ClientConfig{
		Endpoint:       ep,
		Heads:          []transport.Addr{head},
		AttemptTimeout: 2 * time.Second,
		Rounds:         1,
	})
	if err != nil {
		ep.Close()
		return nil, err
	}
	defer cli.Close()
	return cli.Info()
}
