// Command jnodes manages and lists compute nodes across the JOSHUA
// head-node group — the highly available pbsnodes. Offline/online
// transitions are replicated through the total order, so every head
// agrees on the schedulable node pool.
//
// Usage:
//
//	jnodes -config cluster.conf              # list nodes
//	jnodes -config cluster.conf -o compute0  # mark offline
//	jnodes -config cluster.conf -c compute0  # bring back online
//
// The listing shows per-node utilization (cpu=used/total, plus
// mem=used/total when the deployment tracks memory) alongside the
// jobs allocated to each node.
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		offline    = flag.String("o", "", "mark this node offline")
		clear      = flag.String("c", "", "clear this node's offline state")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jnodes: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jnodes: %v", err)
	}
	defer client.Close()

	switch {
	case *offline != "":
		if err := client.SetNodeOffline(*offline); err != nil {
			cli.Fatalf("jnodes: %v", err)
		}
	case *clear != "":
		if err := client.SetNodeOnline(*clear); err != nil {
			cli.Fatalf("jnodes: %v", err)
		}
	default:
		nodes, err := client.Nodes()
		if err != nil {
			cli.Fatalf("jnodes: %v", err)
		}
		fmt.Print(pbs.NodesText(nodes))
	}
}
