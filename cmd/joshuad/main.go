// Command joshuad runs one JOSHUA head node: the replicated, highly
// available PBS-compliant job and resource management service of the
// paper, over real TCP sockets.
//
// Usage:
//
//	joshuad -config cluster.conf -id head0 [-mode static|bootstrap|join]
//	        [-data-dir /var/lib/joshua] [-sync-policy always|interval|none]
//
// The configuration file declares every head node and compute node
// (see internal/config). With -mode static (the default) all declared
// heads form the group together at startup; -mode bootstrap founds a
// fresh singleton group; -mode join joins a running group with state
// transfer, the path a repaired head node takes back into service.
//
// With -data-dir (or data_dir in the configuration) the head keeps a
// write-ahead log and periodic checkpoints under <dir>/<id>; after a
// crash it recovers its state from disk and rejoins with only the
// missing log suffix instead of a full state transfer.
//
// A deployment may be partitioned into several independent
// replication groups ("shards = N" in the configuration plus
// "shard = N" in each [head] section; see internal/shard). Each head
// then forms a group only with the heads of its own shard, schedules
// only its shard's compute nodes, and mints only job IDs that hash
// back to its shard — clients route by job ID with no directory. The
// -shard and -shards flags override the configuration's placement,
// for single-machine experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"joshua/internal/cli"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/shard"
	"joshua/internal/transport/tcpnet"
	"joshua/internal/wal"
)

func main() {
	var (
		configPath   = flag.String("config", "", "cluster configuration file")
		id           = flag.String("id", "", "this head node's name (a [head <name>] section)")
		mode         = flag.String("mode", "static", "group formation: static, bootstrap, or join")
		acctPath     = flag.String("accounting", "", "append PBS accounting records to this file")
		dataDir      = flag.String("data-dir", "", "durable state root: WAL + checkpoints go to <dir>/<id> (overrides data_dir in config; empty = in-memory)")
		syncPolicy   = flag.String("sync-policy", "", "WAL fsync policy: always, interval, or none (overrides sync_policy in config)")
		ckptEvery    = flag.Uint64("checkpoint-every", 0, "applied commands between checkpoints (overrides checkpoint_every in config; 0 = default)")
		ckptCompress = flag.Bool("checkpoint-compress", false, "flate-compress checkpoint files (or checkpoint_compress in config)")
		ckptBlocking = flag.Bool("checkpoint-blocking", false, "serialize+fsync checkpoints on the event loop (pre-concurrent ablation)")
		deltaMax     = flag.Int64("delta-max-bytes", 0, "WAL-suffix state-transfer cap in bytes (overrides delta_max_bytes in config; 0 = 64 MiB default, negative = unlimited)")
		applyConc    = flag.Int("apply-concurrency", 0, "apply-worker pool size for the pipelined write path (overrides apply_concurrency in config; 0 = GOMAXPROCS, negative = serial ablation)")
		leaseDur     = flag.Duration("lease-duration", 0, "read-lease length for locally served linearizable reads (overrides lease_duration in config; 0 = engine default, negative = leases off)")
		shardIdx     = flag.Int("shard", -1, "override this head's replication group (default: the [head] section's shard key)")
		shardCount   = flag.Int("shards", 0, "override the deployment's shard count (default: the shards config key)")
		schedPol     = flag.String("sched-policy", "", "scheduling policy: fifo, priority, or backfill (overrides sched_policy in config)")
		nodeCPUs     = flag.Int("node-cpus", 0, "per-node CPU capacity (overrides node_cpus in config; 0 = 1 cpu)")
		verbose      = flag.Bool("v", false, "log protocol diagnostics")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("joshuad: %v", err)
	}
	if *shardCount > 0 {
		if err := conf.SetShards(*shardCount); err != nil {
			cli.Fatalf("joshuad: %v", err)
		}
	}
	head, ok := conf.Head(*id)
	if !ok {
		cli.Fatalf("joshuad: head %q not declared in configuration", *id)
	}
	if *shardIdx >= 0 {
		if *shardIdx >= conf.Shards {
			cli.Fatalf("joshuad: -shard %d out of range (shards = %d)", *shardIdx, conf.Shards)
		}
		head.Shard = *shardIdx
	}

	resolver := conf.Resolver()
	groupEP, err := tcpnet.Listen(head.GCSAddr(), head.GCS, resolver)
	if err != nil {
		cli.Fatalf("joshuad: group endpoint: %v", err)
	}
	clientEP, err := tcpnet.Listen(head.ClientAddr(), head.Client, resolver)
	if err != nil {
		cli.Fatalf("joshuad: client endpoint: %v", err)
	}
	pbsEP, err := tcpnet.Listen(head.PBSAddr(), head.PBS, resolver)
	if err != nil {
		cli.Fatalf("joshuad: pbs endpoint: %v", err)
	}

	// The head schedules only its shard's slice of the compute pool
	// and assigns only job IDs its shard owns (in the single-group
	// deployment both reduce to everything / no filtering).
	schedPolicy := conf.SchedPolicy
	if *schedPol != "" {
		p, err := pbs.ParseSchedPolicy(*schedPol)
		if err != nil {
			cli.Fatalf("joshuad: %v", err)
		}
		schedPolicy = p
	}
	cpus := conf.NodeCPUs
	if *nodeCPUs > 0 {
		cpus = *nodeCPUs
	}
	pbsCfg := pbs.Config{
		ServerName:        conf.ServerName,
		Nodes:             conf.ShardNodeNamesOf(head.Shard),
		Exclusive:         conf.Exclusive,
		Policy:            schedPolicy,
		Weights:           conf.SchedWeights,
		FairshareHalfLife: conf.FairshareHalfLife,
		NodeCPUs:          cpus,
		NodeMem:           conf.NodeMem,
		KeepCompleted:     1024,
		IDFilter:          shard.IDFilter(head.Shard, conf.Shards),
	}
	if *acctPath != "" {
		f, err := os.OpenFile(*acctPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			cli.Fatalf("joshuad: accounting log: %v", err)
		}
		defer f.Close()
		pbsCfg.Accounting = pbs.NewWriterAccounting(f)
	}
	srv := pbs.NewServer(pbsCfg)
	daemon := pbs.NewDaemon(srv, pbs.DaemonConfig{
		Endpoint: pbsEP,
		Moms:     conf.ShardMomAddrs(head.Shard),
	})

	cfg := joshua.Config{
		Self:           head.MemberID(),
		GroupEndpoint:  groupEP,
		ClientEndpoint: clientEP,
		Peers:          conf.ShardGroupPeers(head.Shard),
		Daemon:         daemon,
		Shard:          head.Shard,
		Shards:         conf.Shards,
		// Non-FIFO policies advance the scheduler's logical clock on
		// every completion, so completion reports must take the same
		// totally ordered path as everything else or replica clocks —
		// and therefore schedules — would drift apart.
		OrderedCompletions: schedPolicy != pbs.PolicyFIFO,
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	}

	root := conf.DataDir
	if *dataDir != "" {
		root = *dataDir
	}
	if root != "" {
		cfg.DataDir = filepath.Join(root, *id)
	}
	policy := conf.SyncPolicy
	if *syncPolicy != "" {
		policy = *syncPolicy
	}
	if policy != "" {
		p, err := wal.ParseSyncPolicy(policy)
		if err != nil {
			cli.Fatalf("joshuad: %v", err)
		}
		cfg.SyncPolicy = p
	}
	cfg.CheckpointEvery = conf.CheckpointEvery
	if *ckptEvery != 0 {
		cfg.CheckpointEvery = *ckptEvery
	}
	cfg.CheckpointCompress = conf.CheckpointCompress || *ckptCompress
	cfg.CheckpointBlocking = *ckptBlocking
	cfg.DeltaMaxBytes = conf.DeltaMaxBytes
	if *deltaMax != 0 {
		cfg.DeltaMaxBytes = *deltaMax
	}
	cfg.ApplyConcurrency = conf.ApplyConcurrency
	if *applyConc != 0 {
		cfg.ApplyConcurrency = *applyConc
	}
	cfg.LeaseDuration = conf.LeaseDuration
	if *leaseDur != 0 {
		cfg.LeaseDuration = *leaseDur
	}
	switch *mode {
	case "static":
		// Static formation spans only this head's own shard: shards
		// are independent groups.
		for _, h := range conf.Heads {
			if h.Shard == head.Shard {
				cfg.InitialMembers = append(cfg.InitialMembers, h.MemberID())
			}
		}
	case "bootstrap":
		cfg.Bootstrap = true
	case "join":
		// neither static members nor bootstrap: join via Peers
	default:
		cli.Fatalf("joshuad: unknown -mode %q", *mode)
	}

	server, err := joshua.StartServer(cfg)
	if err != nil {
		cli.Fatalf("joshuad: %v", err)
	}

	select {
	case <-server.Ready():
		v := server.View()
		fmt.Printf("joshuad %s: serving in view %d, members %v\n", *id, v.ID, v.Members)
	case <-time.After(60 * time.Second):
		cli.Fatalf("joshuad: group not formed within 60s")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful departure: announce the leave so the survivors
		// exclude this head without waiting out the failure detector.
		fmt.Printf("joshuad %s: leaving group\n", *id)
		server.Leave()
	} else {
		server.Close()
	}
}
