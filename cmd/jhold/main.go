// Command jhold places queued jobs on hold across the JOSHUA head-node
// group — the highly available qhold. Holds work here because state
// transfer is snapshot-based (the paper's command-replay prototype had
// to disable them; see DESIGN.md).
//
// Usage:
//
//	jhold -config cluster.conf job-id [job-id ...]
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	configPath := flag.String("config", "", "cluster configuration file")
	bindAddr := flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("jhold: usage: jhold -config cluster.conf job-id [job-id ...]")
	}
	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jhold: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jhold: %v", err)
	}
	defer client.Close()

	failed := false
	for _, arg := range flag.Args() {
		if _, err := client.Hold(pbs.JobID(arg)); err != nil {
			fmt.Printf("jhold: %s: %v\n", arg, err)
			failed = true
		}
	}
	if failed {
		cli.Fatalf("jhold: some holds failed")
	}
}
