// Command jsig signals a running job across the JOSHUA head-node
// group — the qsig the paper left outside JOSHUA ("this operation does
// not appear to change the state of the ... service"). It is routed
// through the total order anyway so that every head agrees on the
// signal count; as the paper observed, it has no scheduling effect.
//
// Usage:
//
//	jsig -config cluster.conf -s SIGUSR1 job-id
package main

import (
	"flag"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		sig        = flag.String("s", "SIGTERM", "signal name to deliver")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Fatalf("jsig: usage: jsig -config cluster.conf [-s SIG] job-id")
	}
	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jsig: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jsig: %v", err)
	}
	defer client.Close()

	if _, err := client.Signal(pbs.JobID(flag.Arg(0)), *sig); err != nil {
		cli.Fatalf("jsig: %v", err)
	}
}
