// Command jcluster runs a complete simulated JOSHUA deployment in one
// process — head nodes, compute nodes, and a workload — and narrates a
// failure scenario end to end: the demonstration that job and resource
// management service survives head-node failures with no interruption
// and no lost state.
//
// Usage:
//
//	jcluster [-heads 3] [-computes 2] [-jobs 8] [-kill 1] [-join 3]
//
// -kill crashes the given head mid-workload; -join adds a new head
// (with state transfer) after the failure. Pass -kill -1 / -join -1 to
// disable either event.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"joshua/internal/cluster"
	"joshua/internal/pbs"
)

func main() {
	var (
		heads    = flag.Int("heads", 3, "initial head nodes (1..8)")
		computes = flag.Int("computes", 2, "compute nodes")
		jobs     = flag.Int("jobs", 8, "jobs to submit")
		kill     = flag.Int("kill", 1, "head index to crash mid-workload (-1 disables)")
		join     = flag.Int("join", -1, "head index to join after the failure (-1 disables)")
		wall     = flag.Duration("wall", 200*time.Millisecond, "simulated job wall time")
	)
	flag.Parse()

	fmt.Printf("=== JOSHUA simulated cluster: %d head node(s), %d compute node(s) ===\n", *heads, *computes)
	c, err := cluster.NewDefault(*heads, *computes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jcluster:", err)
		os.Exit(1)
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "jcluster:", err)
		os.Exit(1)
	}
	v := c.Head(c.LiveHeads()[0]).View()
	fmt.Printf("group formed: view %d, members %v\n\n", v.ID, v.Members)

	cli, err := c.Client()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jcluster:", err)
		os.Exit(1)
	}

	var ids []pbs.JobID
	for i := 0; i < *jobs; i++ {
		j, err := cli.Submit(pbs.SubmitRequest{
			Name:     fmt.Sprintf("job%d", i),
			Owner:    "demo",
			WallTime: *wall,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcluster: submit:", err)
			os.Exit(1)
		}
		fmt.Printf("submitted %s\n", j.ID)
		ids = append(ids, j.ID)

		if *kill >= 0 && i == *jobs/2 {
			fmt.Printf("\n*** crashing head%d (forced shutdown + unplugged cable) ***\n", *kill)
			c.CrashHead(*kill)
			fmt.Printf("surviving heads: %v — submissions continue without interruption\n\n", c.LiveHeads())
		}
	}

	if *join >= 0 {
		fmt.Printf("\n*** head%d joins the group (state transfer) ***\n", *join)
		if err := c.AddHead(*join); err != nil {
			fmt.Fprintln(os.Stderr, "jcluster: join:", err)
		} else {
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				h := c.Head(*join)
				if h != nil {
					select {
					case <-h.Ready():
						fmt.Printf("head%d admitted: view %v\n\n", *join, h.View().Members)
						deadline = time.Now()
					default:
					}
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	fmt.Println("waiting for the workload to finish...")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		done := 0
		for _, id := range ids {
			if j, err := cli.Stat(id); err == nil && j.State == pbs.StateCompleted {
				done++
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "jcluster: workload did not finish in time")
			os.Exit(1)
		}
		time.Sleep(100 * time.Millisecond)
	}

	fmt.Println("\nfinal queue state (via jstat):")
	all, err := cli.StatAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jcluster:", err)
		os.Exit(1)
	}
	fmt.Print(pbs.StatusText(all))

	executions := 0
	for i := 0; i < *computes; i++ {
		executions += c.Mom(i).Executions()
	}
	fmt.Printf("\n%d jobs executed exactly once each across %d compute node(s): executions=%d\n",
		len(ids), *computes, executions)
	fmt.Println("every job completed; no state was lost; service was never interrupted.")
}
