// Command jbench regenerates every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	jbench -fig 10             # Figure 10: job submission latency
//	jbench -fig 11             # Figure 11: job submission throughput
//	jbench -fig 12             # Figure 12: availability/downtime
//	jbench -fig ablations      # DESIGN.md design-choice ablations
//	jbench -fig all            # everything
//
// -scale selects the latency-model scale (1.0 = paper-scale
// milliseconds; smaller runs proportionally faster). Shapes, not
// absolute times, are the reproduction target; each table prints the
// paper's values alongside (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"joshua/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: 10, 11, 12, ablations, all")
		scale    = flag.Float64("scale", 0.2, "latency model scale (1.0 = paper milliseconds)")
		samples  = flag.Int("samples", 20, "latency samples per configuration")
		maxHeads = flag.Int("maxheads", 4, "largest head-node group")
	)
	flag.Parse()

	cal := bench.PaperCalibration(*scale)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jbench:", err)
		os.Exit(1)
	}

	run10 := func() {
		rows, err := bench.Fig10(cal, *maxHeads, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig10(rows, cal))
	}
	run11 := func() {
		counts := []int{10, 50, 100}
		rows, err := bench.Fig11(cal, *maxHeads, counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig11(rows, cal, counts))
	}
	run12 := func() {
		fmt.Println(bench.Fig12(*maxHeads, 2000))
	}
	runAblations := func() {
		fmt.Println("Ablations (DESIGN.md §5):")
		type runner func() (bench.AblationResult, error)
		for _, r := range []runner{
			func() (bench.AblationResult, error) { return bench.AblationSafeDelivery(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOutputPolicy(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationBatchSubmission(cal, 2, 100) },
			func() (bench.AblationResult, error) { return bench.AblationReads(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOrderedCompletions(cal, 2, 6) },
			func() (bench.AblationResult, error) { return bench.AblationExclusiveScheduling(cal, 8) },
		} {
			res, err := r()
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-32s", res.Name+":")
			for name, d := range res.Variants {
				fmt.Printf(" %s=%v", name, d.Round(time.Millisecond/10))
			}
			fmt.Println()
		}
		stall, normal, err := bench.MeasureSequencerFailoverStall(cal)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-32s stall=%v normal=%v (detection+flush; service state intact)\n",
			"sequencer failure stall:", stall.Round(time.Millisecond), normal.Round(time.Millisecond))
		fmt.Println()
	}

	switch *fig {
	case "10":
		run10()
	case "11":
		run11()
	case "12":
		run12()
	case "ablations":
		runAblations()
	case "all":
		run10()
		run11()
		run12()
		runAblations()
	default:
		fail(fmt.Errorf("unknown -fig %q", *fig))
	}
}
