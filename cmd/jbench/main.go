// Command jbench regenerates every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	jbench -fig 10             # Figure 10: job submission latency
//	jbench -fig 11             # Figure 11: job submission throughput
//	jbench -fig 12             # Figure 12: availability/downtime
//	jbench -fig ablations      # DESIGN.md design-choice ablations
//	jbench -fig readpath       # concurrent vs on-loop query serving
//	jbench -fig wal            # WAL fsync-policy ablation vs in-memory
//	jbench -fig applypipe      # pipelined apply-path ablation
//	jbench -fig shards         # sharded replication groups scaling sweep
//	jbench -fig all            # everything
//
// -json writes the selected figure's results (readpath, wal,
// applypipe, or shards) to a machine-readable file (the CI benchmark
// artifact).
//
// -scale selects the latency-model scale (1.0 = paper-scale
// milliseconds; smaller runs proportionally faster). Shapes, not
// absolute times, are the reproduction target; each table prints the
// paper's values alongside (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"joshua/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: 10, 11, 12, ablations, readpath, all")
		scale    = flag.Float64("scale", 0.2, "latency model scale (1.0 = paper milliseconds)")
		samples  = flag.Int("samples", 20, "latency samples per configuration")
		maxHeads = flag.Int("maxheads", 4, "largest head-node group")
		jsonPath = flag.String("json", "", "write readpath results as JSON to this file")
	)
	flag.Parse()

	cal := bench.PaperCalibration(*scale)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jbench:", err)
		os.Exit(1)
	}

	run10 := func() {
		rows, err := bench.Fig10(cal, *maxHeads, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig10(rows, cal))
	}
	run11 := func() {
		counts := []int{10, 50, 100}
		rows, err := bench.Fig11(cal, *maxHeads, counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig11(rows, cal, counts))
	}
	run12 := func() {
		fmt.Println(bench.Fig12(*maxHeads, 2000))
	}
	runAblations := func() {
		fmt.Println("Ablations (DESIGN.md §5):")
		type runner func() (bench.AblationResult, error)
		for _, r := range []runner{
			func() (bench.AblationResult, error) { return bench.AblationSafeDelivery(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOutputPolicy(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationBatchSubmission(cal, 2, 100) },
			func() (bench.AblationResult, error) { return bench.AblationReads(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOrderedCompletions(cal, 2, 6) },
			func() (bench.AblationResult, error) { return bench.AblationExclusiveScheduling(cal, 8) },
		} {
			res, err := r()
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-32s", res.Name+":")
			for name, d := range res.Variants {
				fmt.Printf(" %s=%v", name, d.Round(time.Millisecond/10))
			}
			fmt.Println()
		}
		stall, normal, err := bench.MeasureSequencerFailoverStall(cal)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-32s stall=%v normal=%v (detection+flush; service state intact)\n",
			"sequencer failure stall:", stall.Round(time.Millisecond), normal.Round(time.Millisecond))
		fmt.Println()
	}

	runReadPath := func() {
		conc, onLoop, err := bench.AblationReadConcurrency(cal, 2, 4, 6, 25)
		if err != nil {
			fail(err)
		}
		fmt.Println("Concurrent read path (4 jstat pollers vs a batched submit stream):")
		for _, r := range []bench.MixedReadResult{conc, onLoop} {
			fmt.Printf("  %-12s %6.0f reads/s   read mean %-10v batch mean %v\n",
				r.Variant+":", r.ReadsPerSec, r.ReadMean.Round(time.Millisecond/10), r.SubmitMean.Round(time.Millisecond/10))
		}
		if onLoop.ReadsPerSec > 0 {
			fmt.Printf("  speedup: %.1fx read throughput\n", conc.ReadsPerSec/onLoop.ReadsPerSec)
		}
		fmt.Println()
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string]bench.MixedReadResult{
				"concurrent": conc,
				"on_loop":    onLoop,
			}, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}

	runWAL := func() {
		rows, err := bench.MeasureWALPolicies(cal, 2, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Println("WAL fsync ablation (submission latency, 2 heads):")
		var base time.Duration
		for _, r := range rows {
			if r.Policy == "in-memory" {
				base = r.SubmitMean
			}
			extra := ""
			if base > 0 && r.Policy != "in-memory" {
				extra = fmt.Sprintf("   %+.1f%% vs in-memory", 100*(float64(r.SubmitMean)/float64(base)-1))
			}
			if r.Appends > 0 {
				extra += fmt.Sprintf("   (%d appends, %d fsyncs)", r.Appends, r.Fsyncs)
			}
			fmt.Printf("  %-12s %-10v%s\n", r.Policy+":", r.SubmitMean.Round(time.Millisecond/10), extra)
		}
		fmt.Println()
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string][]bench.WALPolicyResult{"wal_policies": rows}, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}

	runApplyPipe := func() {
		res, err := bench.MeasureApplyPipeline(240, 8, time.Millisecond)
		if err != nil {
			fail(err)
		}
		fmt.Println("Pipelined apply path (SyncPolicy=always, 8 clients, independent keys):")
		for _, v := range res.Variants {
			fmt.Printf("  %-10s %7.0f ops/s   p50 %-9v p99 %-9v (runs=%d barriers=%d overlap=%v)\n",
				v.Name+":", v.Throughput,
				v.SubmitP50.Round(time.Millisecond/10), v.SubmitP99.Round(time.Millisecond/10),
				v.ParallelRuns, v.Barriers, v.FsyncOverlap.Round(time.Millisecond))
		}
		fmt.Printf("  speedup: %.1fx throughput vs serial, p99 ratio %.2f\n",
			res.SpeedupParallelVsSerial, res.P99RatioParallelVsSerial)
		fmt.Println()
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string]bench.ApplyPipeResult{"apply_pipeline": res}, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}

	runShards := func() {
		res, err := bench.MeasureShardScaling(192, 8, time.Millisecond)
		if err != nil {
			fail(err)
		}
		fmt.Println("Sharded replication groups (aggregate submit throughput, 8 clients, 2 heads/shard):")
		for _, v := range res.Variants {
			fmt.Printf("  %d shard(s): %7.0f jobs/s   p50 %-9v p99 %-9v speedup %.1fx (%d jobs listed)\n",
				v.Shards, v.Throughput,
				v.SubmitP50.Round(time.Millisecond/10), v.SubmitP99.Round(time.Millisecond/10),
				v.Speedup, v.Listed)
		}
		fmt.Printf("  speedup at 4 shards: %.1fx vs single group\n", res.SpeedupAt4)
		fmt.Println()
		if *jsonPath != "" {
			out, err := json.MarshalIndent(map[string]bench.ShardResult{"shard_scaling": res}, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}

	switch *fig {
	case "10":
		run10()
	case "11":
		run11()
	case "12":
		run12()
	case "ablations":
		runAblations()
	case "readpath":
		runReadPath()
	case "wal":
		runWAL()
	case "applypipe":
		runApplyPipe()
	case "shards":
		runShards()
	case "all":
		run10()
		run11()
		run12()
		runAblations()
		runReadPath()
		runWAL()
		runApplyPipe()
		runShards()
	default:
		fail(fmt.Errorf("unknown -fig %q", *fig))
	}
}
