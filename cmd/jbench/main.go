// Command jbench regenerates every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	jbench -fig 10             # Figure 10: job submission latency
//	jbench -fig 11             # Figure 11: job submission throughput
//	jbench -fig 12             # Figure 12: availability/downtime
//	jbench -fig ablations      # DESIGN.md design-choice ablations
//	jbench -fig readpath       # concurrent vs on-loop query serving
//	jbench -fig wal            # WAL fsync-policy ablation vs in-memory
//	jbench -fig applypipe      # pipelined apply-path ablation
//	jbench -fig shards         # sharded replication groups scaling sweep
//	jbench -fig leases         # read consistency levels: local/leased/broadcast
//	jbench -fig writepath      # 10k-client zero-alloc write-path profile
//	jbench -fig sched          # scheduling policy sweep: fifo/priority/backfill
//	jbench -fig checkpoint     # off-loop vs blocking checkpoint tail latency
//	jbench -fig all            # everything
//
// -json writes the selected figure's results (readpath, wal,
// applypipe, shards, leases, writepath, or sched) to a machine-readable file
// (the CI benchmark artifact). Every file carries a "meta" object
// recording the run environment: GOMAXPROCS, the Go toolchain
// version, the git commit, the model scale, and the topology the
// figure ran on (head count, shard count, apply concurrency) — enough
// to tell two artifacts apart and to compare like with like.
//
// -scale selects the latency-model scale (1.0 = paper-scale
// milliseconds; smaller runs proportionally faster). Shapes, not
// absolute times, are the reproduction target; each table prints the
// paper's values alongside (see EXPERIMENTS.md).
//
// -cpuprofile, -memprofile and -mutexprofile write runtime/pprof
// profiles covering the selected figure. The replica pipeline stages
// are labeled (rsm_stage=event_loop/apply_worker/releaser/replier/...)
// so a CPU profile splits cleanly per stage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"joshua/internal/bench"
)

// runMeta identifies the environment and topology a benchmark
// artifact came from. Heads and Shards describe the figure's cluster
// (for sweeps, the largest configuration measured); ApplyConcurrency
// is the replica-side parallel-apply width, which follows GOMAXPROCS.
type runMeta struct {
	GOMAXPROCS       int     `json:"gomaxprocs"`
	GoVersion        string  `json:"go_version"`
	GitCommit        string  `json:"git_commit"`
	Scale            float64 `json:"scale"`
	Heads            int     `json:"heads"`
	Shards           int     `json:"shards"`
	ApplyConcurrency int     `json:"apply_concurrency"`
	Timestamp        string  `json:"timestamp_utc"`
}

// newRunMeta captures the environment. The commit comes from git when
// a work tree is available (the common case: CI runs jbench from a
// checkout), falling back to the build info stamp for installed
// binaries.
func newRunMeta(scale float64) runMeta {
	commit := "unknown"
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		commit = strings.TrimSpace(string(out))
	} else if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	return runMeta{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		GoVersion:        runtime.Version(),
		GitCommit:        commit,
		Scale:            scale,
		ApplyConcurrency: runtime.GOMAXPROCS(0),
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
	}
}

func main() {
	var (
		fig          = flag.String("fig", "all", "which figure to regenerate: 10, 11, 12, ablations, readpath, wal, applypipe, shards, leases, writepath, sched, checkpoint, all")
		scale        = flag.Float64("scale", 0.2, "latency model scale (1.0 = paper milliseconds)")
		samples      = flag.Int("samples", 20, "latency samples per configuration")
		maxHeads     = flag.Int("maxheads", 4, "largest head-node group")
		clients      = flag.Int("clients", 10000, "concurrent clients for -fig writepath")
		jsonPath     = flag.String("json", "", "write the selected figure's results as JSON to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	)
	flag.Parse()

	cal := bench.PaperCalibration(*scale)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jbench:", err)
		os.Exit(1)
	}

	// Profiles bracket the figure run itself. The mutex fraction must
	// be raised before any contention happens to be sampled; the heap
	// profile is written after a forced GC so it shows live bytes, not
	// transient garbage.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(100)
	}
	defer func() {
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}
		if *mutexProfile != "" {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fail(err)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fail(err)
			}
			f.Close()
		}
	}()

	// writeJSON emits the figure's results to -json, stamped with the
	// run metadata plus the figure's topology (heads, shards).
	writeJSON := func(payload map[string]any, heads, shards int) {
		if *jsonPath == "" {
			return
		}
		meta := newRunMeta(*scale)
		meta.Heads = heads
		meta.Shards = shards
		payload["meta"] = meta
		out, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fail(err)
		}
	}

	run10 := func() {
		rows, err := bench.Fig10(cal, *maxHeads, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig10(rows, cal))
	}
	run11 := func() {
		counts := []int{10, 50, 100}
		rows, err := bench.Fig11(cal, *maxHeads, counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig11(rows, cal, counts))
	}
	run12 := func() {
		fmt.Println(bench.Fig12(*maxHeads, 2000))
	}
	runAblations := func() {
		fmt.Println("Ablations (DESIGN.md §5):")
		type runner func() (bench.AblationResult, error)
		for _, r := range []runner{
			func() (bench.AblationResult, error) { return bench.AblationSafeDelivery(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOutputPolicy(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationBatchSubmission(cal, 2, 100) },
			func() (bench.AblationResult, error) { return bench.AblationReads(cal, 2, *samples) },
			func() (bench.AblationResult, error) { return bench.AblationOrderedCompletions(cal, 2, 6) },
			func() (bench.AblationResult, error) { return bench.AblationExclusiveScheduling(cal, 8) },
		} {
			res, err := r()
			if err != nil {
				fail(err)
			}
			fmt.Printf("  %-32s", res.Name+":")
			for name, d := range res.Variants {
				fmt.Printf(" %s=%v", name, d.Round(time.Millisecond/10))
			}
			fmt.Println()
		}
		stall, normal, err := bench.MeasureSequencerFailoverStall(cal)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-32s stall=%v normal=%v (detection+flush; service state intact)\n",
			"sequencer failure stall:", stall.Round(time.Millisecond), normal.Round(time.Millisecond))
		fmt.Println()
	}

	runReadPath := func() {
		conc, onLoop, err := bench.AblationReadConcurrency(cal, 2, 4, 6, 25)
		if err != nil {
			fail(err)
		}
		fmt.Println("Concurrent read path (4 jstat pollers vs a batched submit stream):")
		for _, r := range []bench.MixedReadResult{conc, onLoop} {
			fmt.Printf("  %-12s %6.0f reads/s   read mean %-10v batch mean %v\n",
				r.Variant+":", r.ReadsPerSec, r.ReadMean.Round(time.Millisecond/10), r.SubmitMean.Round(time.Millisecond/10))
		}
		if onLoop.ReadsPerSec > 0 {
			fmt.Printf("  speedup: %.1fx read throughput\n", conc.ReadsPerSec/onLoop.ReadsPerSec)
		}
		fmt.Println()
		writeJSON(map[string]any{
			"concurrent": conc,
			"on_loop":    onLoop,
		}, 2, 1)
	}

	runWAL := func() {
		rows, err := bench.MeasureWALPolicies(cal, 2, *samples)
		if err != nil {
			fail(err)
		}
		fmt.Println("WAL fsync ablation (submission latency, 2 heads):")
		var base time.Duration
		for _, r := range rows {
			if r.Policy == "in-memory" {
				base = r.SubmitMean
			}
			extra := ""
			if base > 0 && r.Policy != "in-memory" {
				extra = fmt.Sprintf("   %+.1f%% vs in-memory", 100*(float64(r.SubmitMean)/float64(base)-1))
			}
			if r.Appends > 0 {
				extra += fmt.Sprintf("   (%d appends, %d fsyncs)", r.Appends, r.Fsyncs)
			}
			fmt.Printf("  %-12s %-10v%s\n", r.Policy+":", r.SubmitMean.Round(time.Millisecond/10), extra)
		}
		fmt.Println()
		writeJSON(map[string]any{"wal_policies": rows}, 2, 1)
	}

	runApplyPipe := func() {
		res, err := bench.MeasureApplyPipeline(240, 8, time.Millisecond)
		if err != nil {
			fail(err)
		}
		fmt.Println("Pipelined apply path (SyncPolicy=always, 8 clients, independent keys):")
		for _, v := range res.Variants {
			fmt.Printf("  %-10s %7.0f ops/s   p50 %-9v p99 %-9v (runs=%d barriers=%d overlap=%v)\n",
				v.Name+":", v.Throughput,
				v.SubmitP50.Round(time.Millisecond/10), v.SubmitP99.Round(time.Millisecond/10),
				v.ParallelRuns, v.Barriers, v.FsyncOverlap.Round(time.Millisecond))
		}
		fmt.Printf("  speedup: %.1fx throughput vs serial, p99 ratio %.2f\n",
			res.SpeedupParallelVsSerial, res.P99RatioParallelVsSerial)
		fmt.Println()
		writeJSON(map[string]any{"apply_pipeline": res}, 2, 1)
	}

	runShards := func() {
		res, err := bench.MeasureShardScaling(192, 8, time.Millisecond)
		if err != nil {
			fail(err)
		}
		fmt.Println("Sharded replication groups (aggregate submit throughput, 8 clients, 2 heads/shard):")
		for _, v := range res.Variants {
			fmt.Printf("  %d shard(s): %7.0f jobs/s   p50 %-9v p99 %-9v speedup %.1fx (%d jobs listed)\n",
				v.Shards, v.Throughput,
				v.SubmitP50.Round(time.Millisecond/10), v.SubmitP99.Round(time.Millisecond/10),
				v.Speedup, v.Listed)
		}
		fmt.Printf("  speedup at 4 shards: %.1fx vs single group\n", res.SpeedupAt4)
		fmt.Println()
		writeJSON(map[string]any{"shard_scaling": res}, 2, 8)
	}

	runLeases := func() {
		res, err := bench.MeasureLeases(cal, 4, 8, 5, 2*time.Second)
		if err != nil {
			fail(err)
		}
		fmt.Println("Read consistency levels (8 readers, 4 heads, pure-read phase):")
		for _, v := range res.Variants {
			extra := ""
			if v.LeaseReads > 0 || v.LeaseFallbacks > 0 {
				extra = fmt.Sprintf("   (%d leased, %d fallbacks)", v.LeaseReads, v.LeaseFallbacks)
			}
			fmt.Printf("  %-12s %7.0f reads/s   read mean %v%s\n",
				v.Name+":", v.ReadsPerSec, v.ReadMean.Round(time.Millisecond/10), extra)
		}
		fmt.Printf("  leased vs local: %.2fx   leased vs broadcast-ordered: %.1fx\n",
			res.LeasedVsLocal, res.LeasedVsBroadcast)
		fmt.Println()
		writeJSON(map[string]any{"lease_reads": res}, 4, 1)
	}

	runCheckpoint := func() {
		res, err := bench.MeasureCheckpointStall(0, 0, 0)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatCheckpoint(res))
		writeJSON(map[string]any{"checkpoint": res}, 2, 1)
	}

	runSched := func() {
		res, err := bench.MeasureSchedPolicies(96, 16)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatSched(res))
		writeJSON(map[string]any{"sched_policies": res}, 1, 1)
	}

	runWritePath := func(n int) {
		const heads = 2
		res, err := bench.MeasureWritePath(n, 3, heads)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Zero-alloc write path (%d clients x %d puts, %d heads, durable):\n",
			res.Clients, res.OpsPerClient, res.Heads)
		fmt.Printf("  throughput: %8.0f ops/s   p50 %-9v p99 %v\n",
			res.Throughput, res.SubmitP50.Round(time.Millisecond), res.SubmitP99.Round(time.Millisecond))
		fmt.Printf("  allocs/op:  %8.1f         bytes/op %.0f (process-wide: clients+net+%d replicas)\n",
			res.AllocsPerOp, res.BytesPerOp, res.Heads)
		fmt.Printf("  GC: %d cycles, %v paused   heap %0.1f MB   applied %d   reply drops %d\n",
			res.NumGC, res.GCPauseTotal.Round(time.Millisecond/10),
			float64(res.HeapAllocBytes)/(1<<20), res.Applied, res.ReplyQueueDrops)
		fmt.Println()
		writeJSON(map[string]any{"write_path": res}, heads, 1)
	}

	switch *fig {
	case "10":
		run10()
	case "11":
		run11()
	case "12":
		run12()
	case "ablations":
		runAblations()
	case "readpath":
		runReadPath()
	case "wal":
		runWAL()
	case "applypipe":
		runApplyPipe()
	case "shards":
		runShards()
	case "leases":
		runLeases()
	case "writepath":
		runWritePath(*clients)
	case "sched":
		runSched()
	case "checkpoint":
		runCheckpoint()
	case "all":
		run10()
		run11()
		run12()
		runAblations()
		runReadPath()
		runWAL()
		runApplyPipe()
		runShards()
		runLeases()
		runSched()
		runCheckpoint()
		// "all" is the smoke-everything mode; cap the client fleet so
		// it stays minutes, not tens of minutes. The full 10k-client
		// profile is an explicit -fig writepath run.
		runWritePath(min(*clients, 2000))
	default:
		fail(fmt.Errorf("unknown -fig %q", *fig))
	}
}
