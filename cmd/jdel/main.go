// Command jdel deletes jobs from the JOSHUA head-node group — the
// highly available qdel of the paper. Queued jobs vanish immediately;
// running jobs are killed on their compute nodes.
//
// Usage:
//
//	jdel -config cluster.conf job-id [job-id ...]
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	configPath := flag.String("config", "", "cluster configuration file")
	bindAddr := flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("jdel: usage: jdel -config cluster.conf job-id [job-id ...]")
	}

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jdel: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jdel: %v", err)
	}
	defer client.Close()

	exit := 0
	for _, arg := range flag.Args() {
		if _, err := client.Delete(pbs.JobID(arg)); err != nil {
			fmt.Printf("jdel: %s: %v\n", arg, err)
			exit = 1
		}
	}
	if exit != 0 {
		cli.Fatalf("jdel: some deletions failed")
	}
}
