// Command jstat queries job status from the JOSHUA head-node group —
// the highly available qstat of the paper. By default the query is
// totally ordered with respect to mutations (a linearizable read);
// -local serves it from one head's local state instead.
//
// Usage:
//
//	jstat -config cluster.conf [-f] [-local] [job-id]
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		full       = flag.Bool("f", false, "full display (qstat -f)")
		local      = flag.Bool("local", false, "read one head's local state (fast, possibly stale)")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}
	defer client.Close()

	var jobs []pbs.Job
	switch {
	case *local:
		jobs, err = client.StatLocal(pbs.JobID(flag.Arg(0)))
	case flag.NArg() > 0:
		var j pbs.Job
		j, err = client.Stat(pbs.JobID(flag.Arg(0)))
		jobs = []pbs.Job{j}
	default:
		jobs, err = client.StatAll()
	}
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}

	if *full {
		for _, j := range jobs {
			fmt.Print(pbs.FullStatusText(j))
		}
		return
	}
	fmt.Print(pbs.StatusText(jobs))
}
