// Command jstat queries job status from the JOSHUA head-node group —
// the highly available qstat of the paper. As in the paper, the query
// stays outside the total order: it is answered from one head's local
// state (round-robined across the group, prefix-consistent, possibly
// trailing a mutation in flight). -ordered asks for a linearizable
// read instead: a head holding a live sequencer lease serves it
// locally at nearly local-read cost, and a leaseless head falls back
// to serializing it through the total order (one full ordering round)
// — see DESIGN.md §6.7. -local forces the explicit local-state
// operation against a single head.
//
// Usage:
//
//	jstat -config cluster.conf [-f] [-ordered] [-local] [job-id]
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
		full       = flag.Bool("f", false, "full display (qstat -f)")
		ordered    = flag.Bool("ordered", false, "serialize the query through the total order (linearizable read)")
		local      = flag.Bool("local", false, "read one head's local state (fast, possibly stale)")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}
	defer client.Close()

	var jobs []pbs.Job
	switch {
	case *local:
		jobs, err = client.StatLocal(pbs.JobID(flag.Arg(0)))
	case *ordered && flag.NArg() > 0:
		var j pbs.Job
		j, err = client.StatOrdered(pbs.JobID(flag.Arg(0)))
		jobs = []pbs.Job{j}
	case *ordered:
		jobs, err = client.StatAllOrdered()
	case flag.NArg() > 0:
		var j pbs.Job
		j, err = client.Stat(pbs.JobID(flag.Arg(0)))
		jobs = []pbs.Job{j}
	default:
		jobs, err = client.StatAll()
	}
	if err != nil {
		cli.Fatalf("jstat: %v", err)
	}

	if *full {
		for _, j := range jobs {
			fmt.Print(pbs.FullStatusText(j))
		}
		return
	}
	fmt.Print(pbs.StatusText(jobs))
}
