// Command jrls releases held jobs across the JOSHUA head-node group —
// the highly available qrls.
//
// Usage:
//
//	jrls -config cluster.conf job-id [job-id ...]
package main

import (
	"flag"
	"fmt"
	"time"

	"joshua/internal/cli"
	"joshua/internal/pbs"
)

func main() {
	configPath := flag.String("config", "", "cluster configuration file")
	bindAddr := flag.String("bind", "", "local TCP address to listen on for replies (overrides JOSHUA_BIND and client_bind)")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("jrls: usage: jrls -config cluster.conf job-id [job-id ...]")
	}
	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jrls: %v", err)
	}
	client, err := cli.NewClientBind(conf, 3*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jrls: %v", err)
	}
	defer client.Close()

	failed := false
	for _, arg := range flag.Args() {
		if _, err := client.Release(pbs.JobID(arg)); err != nil {
			fmt.Printf("jrls: %s: %v\n", arg, err)
			failed = true
		}
	}
	if failed {
		cli.Fatalf("jrls: some releases failed")
	}
}
