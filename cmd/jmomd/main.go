// Command jmomd runs one compute node's PBS mom daemon with the
// JOSHUA jmutex/jdone prologue hooks, over real TCP sockets.
//
// Usage:
//
//	jmomd -config cluster.conf -id compute0
//
// The mom accepts job-start requests from every head node, elects a
// single execution per job via the replicated jmutex, simulates the
// job for its wall time, and reports completion to all heads (the
// TORQUE v2.0p1 multi-server reporting the paper relies on).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"joshua/internal/cli"
	"joshua/internal/joshua"
	"joshua/internal/pbs"
	"joshua/internal/transport/tcpnet"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster configuration file")
		bindAddr   = flag.String("bind", "", "local TCP address the lock client listens on for replies (overrides JOSHUA_BIND and client_bind)")
		id         = flag.String("id", "", "this compute node's name (a [compute <name>] section)")
	)
	flag.Parse()

	conf, err := cli.LoadConfig(*configPath)
	if err != nil {
		cli.Fatalf("jmomd: %v", err)
	}
	node, ok := conf.Compute(*id)
	if !ok {
		cli.Fatalf("jmomd: compute node %q not declared in configuration", *id)
	}

	momEP, err := tcpnet.Listen(node.MomAddr(), node.Mom, conf.Resolver())
	if err != nil {
		cli.Fatalf("jmomd: mom endpoint: %v", err)
	}
	lockClient, err := cli.NewClientBind(conf, 2*time.Second, *bindAddr)
	if err != nil {
		cli.Fatalf("jmomd: jmutex client: %v", err)
	}
	prologue, epilogue := joshua.MomHooks(lockClient, node.Name)

	// The mom reports to (and is driven by) only the heads of the
	// shard that schedules it; in the single-group deployment that is
	// every head. The lock client above routes jmutex/jdone by job ID,
	// so it works unchanged under sharding.
	servers := conf.ShardHeadPBSAddrs(node.Shard)
	mom := pbs.StartMom(pbs.MomConfig{
		Name:      node.Name,
		Endpoint:  momEP,
		Servers:   servers,
		Prologue:  prologue,
		Epilogue:  epilogue,
		TimeScale: conf.TimeScale,
	})
	fmt.Printf("jmomd %s: serving %d head nodes (shard %d)\n", node.Name, len(servers), node.Shard)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	mom.Close()
	lockClient.Close()
}
